#include "core/partial.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/candidates.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

struct Fixture {
  Dataset sample;
  STRange universe;
  CostModel model{EnvironmentModel::AmazonS3Emr()};

  Fixture() {
    TaxiFleetConfig config;
    config.num_taxis = 20;
    config.samples_per_taxi = 500;
    sample = GenerateTaxiFleet(config);
    universe = config.Universe();
  }
};

TEST(ContainmentProbabilityTest, FullCoverageAlwaysContains) {
  const Fixture f;
  const RangeSize q = {f.universe.Width() * 0.2, f.universe.Height() * 0.2,
                       f.universe.Duration() * 0.2};
  EXPECT_DOUBLE_EQ(ContainmentProbability(f.universe, q, f.universe), 1.0);
}

TEST(ContainmentProbabilityTest, QueryLargerThanCoverageNeverContained) {
  const Fixture f;
  const STRange half = STRange::FromBounds(
      f.universe.x_min(), f.universe.Centroid().x, f.universe.y_min(),
      f.universe.y_max(), f.universe.t_min(), f.universe.t_max());
  const RangeSize q = {f.universe.Width() * 0.7, f.universe.Height() * 0.1,
                       f.universe.Duration() * 0.1};
  EXPECT_DOUBLE_EQ(ContainmentProbability(half, q, f.universe), 0.0);
}

TEST(ContainmentProbabilityTest, MonteCarloAgreement) {
  const Fixture f;
  Rng rng(17);
  const STRange coverage = STRange::FromCentroid(
      {f.universe.Width() * 0.6, f.universe.Height() * 0.5,
       f.universe.Duration() * 0.8},
      f.universe.Centroid());
  for (const double frac : {0.05, 0.15, 0.3}) {
    const RangeSize q = {f.universe.Width() * frac,
                         f.universe.Height() * frac,
                         f.universe.Duration() * frac};
    const double predicted =
        ContainmentProbability(coverage, q, f.universe);
    int contained = 0;
    constexpr int kTrials = 5000;
    for (int t = 0; t < kTrials; ++t) {
      const STRange instance = SampleQueryInstance({q}, f.universe, rng);
      if (coverage.Contains(instance)) ++contained;
    }
    EXPECT_NEAR(static_cast<double>(contained) / kTrials, predicted, 0.02)
        << "frac " << frac;
  }
}

TEST(DensestSpatialBoxTest, CoversRequestedFractionCompactly) {
  const Fixture f;
  const STRange box = DensestSpatialBox(f.sample, f.universe, 0.6);
  const std::size_t inside = f.sample.FilterByRange(box).size();
  const double fraction =
      static_cast<double>(inside) / static_cast<double>(f.sample.size());
  EXPECT_GE(fraction, 0.58);
  // Hotspot-clustered data: 60% of records in far less than 60% of area.
  const double area_fraction = (box.Width() * box.Height()) /
                               (f.universe.Width() * f.universe.Height());
  EXPECT_LT(area_fraction, 0.5);
  EXPECT_TRUE(f.universe.Contains(box));
}

TEST(SketchPartialReplicaTest, ScalesWithCoveredFraction) {
  const Fixture f;
  const PartialCandidate candidate{
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("COL-GZIP")},
      DensestSpatialBox(f.sample, f.universe, 0.5)};
  const std::uint64_t total = 1'000'000;
  const ReplicaSketch sketch =
      SketchPartialReplica(f.sample, candidate, f.universe, total, 0.4);
  EXPECT_EQ(sketch.universe, candidate.coverage);
  // Covered records ~ half the total; storage proportional.
  EXPECT_NEAR(static_cast<double>(sketch.total_records) /
                  static_cast<double>(total),
              0.5, 0.1);
  EXPECT_LT(sketch.storage_bytes,
            static_cast<std::uint64_t>(0.6 * 0.4 * kRecordRowBytes *
                                       static_cast<double>(total)));
}

TEST(SketchPartialReplicaTest, ValidatesCoverage) {
  const Fixture f;
  const PartialCandidate outside{
      {{.spatial_partitions = 4, .temporal_partitions = 4},
       EncodingScheme::FromName("ROW-PLAIN")},
      STRange::FromBounds(0, 1, 0, 1, 0, 1)};
  EXPECT_THROW(
      SketchPartialReplica(f.sample, outside, f.universe, 1000, 0.5),
      InvalidArgument);
}

// A hand-built mixed instance: one full replica, one partial that is much
// cheaper for the (fully contained) small query.
MixedSelectionInput TinyMixed(double budget) {
  MixedSelectionInput input;
  input.full.cost = {{100}, {50}};  // q0 small, q1 large; one full replica
  input.full.weights = {1, 1};
  input.full.storage_bytes = {30};
  input.full.budget_bytes = budget;
  input.partial_storage = {10};
  input.contained_cost = {{5}, {1000}};
  input.containment = {{0.8}, {0.0}};
  return input;
}

TEST(MixedSubsetCostTest, BlendsContainmentWithFallback) {
  const MixedSelectionInput input = TinyMixed(100);
  const std::size_t fulls[] = {0};
  EXPECT_DOUBLE_EQ(MixedSubsetCost(input, fulls, {}), 150);
  const std::size_t partials[] = {0};
  // q0: 0.8*5 + 0.2*100 = 24; q1: containment 0 -> full 50.
  EXPECT_DOUBLE_EQ(MixedSubsetCost(input, fulls, partials), 74);
  EXPECT_TRUE(std::isinf(MixedSubsetCost(input, {}, partials)));
}

TEST(SelectGreedyMixedTest, AddsPartialWhenItPaysOff) {
  const MixedSelectionResult r = SelectGreedyMixed(TinyMixed(100));
  ASSERT_EQ(r.full_chosen.size(), 1u);
  ASSERT_EQ(r.partial_chosen.size(), 1u);
  EXPECT_DOUBLE_EQ(r.workload_cost, 74);
  EXPECT_DOUBLE_EQ(r.storage_used, 40);
}

TEST(SelectGreedyMixedTest, SkipsPartialWhenBudgetOnlyFitsFull) {
  const MixedSelectionResult r = SelectGreedyMixed(TinyMixed(35));
  EXPECT_EQ(r.full_chosen.size(), 1u);
  EXPECT_TRUE(r.partial_chosen.empty());
  EXPECT_DOUBLE_EQ(r.workload_cost, 150);
}

TEST(SelectGreedyMixedTest, NeverChoosesPartialsAlone) {
  MixedSelectionInput input = TinyMixed(12);  // only the partial fits
  const MixedSelectionResult r = SelectGreedyMixed(input);
  EXPECT_TRUE(r.full_chosen.empty());
  EXPECT_TRUE(r.partial_chosen.empty());
  EXPECT_TRUE(std::isinf(r.workload_cost));
}

TEST(SelectGreedyMixedTest, EndToEndBeatsFullOnlyUnderTightBudget) {
  // Real pipeline: full candidates + hotspot partials, hotspot-heavy
  // workload, budget that fits one full replica plus partials only.
  const Fixture f;
  const std::uint64_t total_records = 650'000'000;
  Workload workload;
  const STRange hotspot = DensestSpatialBox(f.sample, f.universe, 0.5);
  // Frequent small queries inside the hotspot + occasional full sweeps.
  workload.Add({{hotspot.Width() * 0.1, hotspot.Height() * 0.1,
                 f.universe.Duration() * 0.02}},
               10.0);
  workload.Add({{hotspot.Width() * 0.3, hotspot.Height() * 0.3,
                 f.universe.Duration() * 0.1}},
               5.0);
  workload.Add({f.universe.Size()}, 1.0);

  const auto ratios =
      MeasureCompressionRatios(f.sample, AllEncodingSchemes(), 5000);
  std::vector<PartitioningSpec> partitionings;
  for (const std::size_t s : {16u, 256u})
    for (const std::size_t t : {16u, 64u})
      partitionings.push_back(
          {.spatial_partitions = s, .temporal_partitions = t});
  CandidateMatrixResult matrix = BuildSelectionInputGrouped(
      f.sample, f.universe, partitionings, AllEncodingSchemes(), ratios,
      total_records, workload, f.model, /*budget*/ 1.0);

  MixedSelectionInput mixed;
  mixed.full = matrix.input;
  // Budget: 1.4x one raw copy — room for one full replica + partials.
  mixed.full.budget_bytes =
      1.4 * static_cast<double>(total_records) * kRecordRowBytes;
  std::vector<ReplicaSketch> partial_sketches;
  for (const PartitioningSpec& spec : partitionings) {
    const PartialCandidate candidate{
        {spec, EncodingScheme::FromName("COL-GZIP")}, hotspot};
    partial_sketches.push_back(SketchPartialReplica(
        f.sample, candidate, f.universe, total_records,
        ratios.at("COL-GZIP")));
  }
  AddPartialCandidates(mixed, partial_sketches, workload, f.model,
                       f.universe);

  const MixedSelectionResult with_partials = SelectGreedyMixed(mixed);
  SelectionInput full_only = matrix.input;
  full_only.budget_bytes = mixed.full.budget_bytes;
  const SelectionResult baseline = SelectGreedy(full_only);

  ASSERT_FALSE(with_partials.full_chosen.empty());
  EXPECT_LE(with_partials.workload_cost, baseline.workload_cost + 1e-6);
  EXPECT_LE(with_partials.storage_used, mixed.full.budget_bytes);
}

}  // namespace
}  // namespace blot
