#include "core/mip_selection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

SelectionInput RandomInstance(Rng& rng, std::size_t n, std::size_t m) {
  SelectionInput input;
  input.weights.resize(n);
  input.storage_bytes.resize(m);
  for (auto& w : input.weights) w = rng.NextDouble(0.5, 2.0);
  for (auto& s : input.storage_bytes) s = rng.NextDouble(5, 50);
  input.cost.assign(n, std::vector<double>(m));
  for (auto& row : input.cost)
    for (auto& c : row) c = rng.NextDouble(1, 1000);
  double total = 0;
  for (double s : input.storage_bytes) total += s;
  input.budget_bytes = total * rng.NextDouble(0.25, 0.7);
  return input;
}

TEST(SelectMipTest, MatchesExhaustiveOnRandomInstances) {
  Rng rng(41);
  for (int t = 0; t < 25; ++t) {
    const SelectionInput input =
        RandomInstance(rng, 3 + rng.NextUint64(5), 4 + rng.NextUint64(6));
    const SelectionResult exact = SelectExhaustive(input);
    const SelectionResult mip = SelectMip(input);
    ASSERT_TRUE(mip.optimal) << "trial " << t;
    EXPECT_NEAR(mip.workload_cost, exact.workload_cost,
                exact.workload_cost * 1e-6 + 1e-9)
        << "trial " << t;
    EXPECT_LE(mip.storage_used, input.budget_bytes + 1e-6);
  }
}

TEST(SelectMipTest, WithoutWarmStartStillOptimal) {
  Rng rng(43);
  MipSelectionOptions options;
  options.warm_start_with_greedy = false;
  for (int t = 0; t < 10; ++t) {
    const SelectionInput input =
        RandomInstance(rng, 3 + rng.NextUint64(3), 4 + rng.NextUint64(4));
    const SelectionResult exact = SelectExhaustive(input);
    const SelectionResult mip = SelectMip(input, options);
    ASSERT_TRUE(mip.optimal);
    EXPECT_NEAR(mip.workload_cost, exact.workload_cost,
                exact.workload_cost * 1e-6 + 1e-9);
  }
}

TEST(SelectMipTest, AggregatedAndDisaggregatedConstraintsAgree) {
  // The paper's Eq. 4 relaxation of Eq. 3 "does not change the optimal
  // solution" — verify on random instances.
  Rng rng(47);
  for (int t = 0; t < 10; ++t) {
    const SelectionInput input =
        RandomInstance(rng, 3 + rng.NextUint64(3), 4 + rng.NextUint64(4));
    MipSelectionOptions aggregated;
    MipSelectionOptions disaggregated;
    disaggregated.use_disaggregated_constraints = true;
    const SelectionResult a = SelectMip(input, aggregated);
    const SelectionResult b = SelectMip(input, disaggregated);
    ASSERT_TRUE(a.optimal && b.optimal);
    EXPECT_NEAR(a.workload_cost, b.workload_cost,
                a.workload_cost * 1e-6 + 1e-9)
        << "trial " << t;
  }
}

TEST(SelectMipTest, BeatsOrMatchesGreedyAlways) {
  Rng rng(53);
  for (int t = 0; t < 15; ++t) {
    const SelectionInput input =
        RandomInstance(rng, 4 + rng.NextUint64(4), 5 + rng.NextUint64(5));
    const SelectionResult greedy = SelectGreedy(input);
    const SelectionResult mip = SelectMip(input);
    if (std::isfinite(greedy.workload_cost))
      EXPECT_LE(mip.workload_cost, greedy.workload_cost + 1e-9);
  }
}

TEST(SelectMipTest, TightBudgetSelectsSingleBest) {
  SelectionInput input;
  input.cost = {{10, 30}, {40, 20}};
  input.weights = {1, 1};
  input.storage_bytes = {20, 20};
  input.budget_bytes = 25;  // room for exactly one
  const SelectionResult mip = SelectMip(input);
  ASSERT_TRUE(mip.optimal);
  ASSERT_EQ(mip.chosen.size(), 1u);
  EXPECT_NEAR(mip.workload_cost, 50.0, 1e-9);  // both singles tie at 50
}

TEST(SelectMipTest, ThrowsWhenNoReplicaFitsBudget) {
  SelectionInput input;
  input.cost = {{10}};
  input.weights = {1};
  input.storage_bytes = {100};
  input.budget_bytes = 1;
  EXPECT_THROW(SelectMip(input), InvalidArgument);
}

TEST(BuildSelectionMipTest, ProblemDimensionsMatchFormulation) {
  SelectionInput input;
  input.cost = {{1, 2, 3}, {4, 5, 6}};
  input.weights = {1, 2};
  input.storage_bytes = {10, 20, 30};
  input.budget_bytes = 100;
  const MipProblem aggregated = BuildSelectionMip(input, false);
  const std::size_t n = 2, m = 3;
  EXPECT_EQ(aggregated.lp.num_variables(), m + n * m);
  // storage + n assignment + m linking + m bounds.
  EXPECT_EQ(aggregated.lp.num_constraints(), 1 + n + m + m);
  EXPECT_EQ(aggregated.binary_variables.size(), m);

  const MipProblem disaggregated = BuildSelectionMip(input, true);
  EXPECT_EQ(disaggregated.lp.num_constraints(), 1 + n + n * m + m);
}

TEST(BuildSelectionMipTest, ObjectiveUsesWeightedCosts) {
  SelectionInput input;
  input.cost = {{3, 7}};
  input.weights = {2};
  input.storage_bytes = {1, 1};
  input.budget_bytes = 10;
  const MipProblem mip = BuildSelectionMip(input);
  // x variables have zero objective; y_00 = 2*3, y_01 = 2*7.
  EXPECT_DOUBLE_EQ(mip.lp.objective(0), 0.0);
  EXPECT_DOUBLE_EQ(mip.lp.objective(1), 0.0);
  EXPECT_DOUBLE_EQ(mip.lp.objective(2), 6.0);
  EXPECT_DOUBLE_EQ(mip.lp.objective(3), 14.0);
}

}  // namespace
}  // namespace blot
