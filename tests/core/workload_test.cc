#include "core/workload.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace blot {
namespace {

TEST(WorkloadTest, AddAndTotals) {
  Workload w;
  w.Add({{1, 2, 3}}, 2.0);
  w.Add({{4, 5, 6}}, 3.0);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.TotalWeight(), 5.0);
  EXPECT_THROW(w.Add({{1, 1, 1}}, -1.0), InvalidArgument);
}

TEST(WorkloadTest, NormalizedSumsToOne) {
  Workload w;
  w.Add({{1, 1, 1}}, 2.0);
  w.Add({{2, 2, 2}}, 6.0);
  const Workload n = w.Normalized();
  EXPECT_DOUBLE_EQ(n.TotalWeight(), 1.0);
  EXPECT_DOUBLE_EQ(n.queries()[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(n.queries()[1].weight, 0.75);
  EXPECT_THROW(Workload().Normalized(), InvalidArgument);
}

TEST(ReduceWorkloadTest, SmallWorkloadPassesThrough) {
  Workload w;
  w.Add({{1, 1, 1}}, 1.0);
  w.Add({{2, 2, 2}}, 1.0);
  Rng rng(1);
  const Workload reduced = ReduceWorkload(w, 5, rng);
  EXPECT_EQ(reduced.size(), 2u);
}

TEST(ReduceWorkloadTest, ClustersPreserveTotalWeightAndScale) {
  // Two well-separated size groups (0.01-ish and 1.0-ish) must reduce to
  // two representatives near the group geometric means.
  Workload w;
  Rng noise(2);
  for (int i = 0; i < 50; ++i) {
    const double s = 0.01 * noise.NextDouble(0.8, 1.25);
    w.Add({{s, s, s}}, 1.0);
  }
  for (int i = 0; i < 50; ++i) {
    const double s = 1.0 * noise.NextDouble(0.8, 1.25);
    w.Add({{s, s, s}}, 2.0);
  }
  Rng rng(3);
  const Workload reduced = ReduceWorkload(w, 2, rng);
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_NEAR(reduced.TotalWeight(), w.TotalWeight(), 1e-9);
  const bool first_small =
      reduced.queries()[0].query.size.w < reduced.queries()[1].query.size.w;
  const WeightedQuery& small = reduced.queries()[first_small ? 0 : 1];
  const WeightedQuery& large = reduced.queries()[first_small ? 1 : 0];
  EXPECT_NEAR(small.query.size.w, 0.01, 0.004);
  EXPECT_NEAR(large.query.size.w, 1.0, 0.4);
  EXPECT_NEAR(small.weight, 50.0, 1e-9);
  EXPECT_NEAR(large.weight, 100.0, 1e-9);
}

TEST(ReduceWorkloadTest, RejectsNonPositiveSizes) {
  Workload w;
  w.Add({{0.0, 1, 1}}, 1.0);
  for (int i = 0; i < 10; ++i) w.Add({{1, 1, 1}}, 1.0);
  Rng rng(4);
  EXPECT_THROW(ReduceWorkload(w, 2, rng), InvalidArgument);
}

TEST(SampleQueryInstanceTest, InstanceHasRequestedSizeAndStaysInside) {
  const STRange universe = STRange::FromBounds(120, 122, 30, 32, 0, 1000);
  Rng rng(5);
  const GroupedQuery q{{0.4, 0.6, 100}};
  for (int i = 0; i < 200; ++i) {
    const STRange instance = SampleQueryInstance(q, universe, rng);
    EXPECT_NEAR(instance.Width(), 0.4, 1e-12);
    EXPECT_NEAR(instance.Height(), 0.6, 1e-12);
    EXPECT_NEAR(instance.Duration(), 100, 1e-12);
    EXPECT_TRUE(universe.Contains(instance));
  }
}

TEST(SampleQueryInstanceTest, OversizedQueryIsCentered) {
  const STRange universe = STRange::FromBounds(0, 1, 0, 1, 0, 1);
  Rng rng(6);
  const GroupedQuery q{{5, 5, 5}};
  const STRange instance = SampleQueryInstance(q, universe, rng);
  EXPECT_EQ(instance.Centroid(), universe.Centroid());
  EXPECT_TRUE(instance.Contains(universe));
}

TEST(SampleQueryInstanceTest, CentroidsCoverTheCentroidRange) {
  // Uniformity smoke test: with many samples, centroids span most of the
  // admissible interval in each dimension.
  const STRange universe = STRange::FromBounds(0, 10, 0, 10, 0, 10);
  Rng rng(7);
  const GroupedQuery q{{2, 2, 2}};
  double min_x = 1e9, max_x = -1e9;
  for (int i = 0; i < 2000; ++i) {
    const STPoint c = SampleQueryInstance(q, universe, rng).Centroid();
    min_x = std::min(min_x, c.x);
    max_x = std::max(max_x, c.x);
    EXPECT_GE(c.x, 1.0 - 1e-9);
    EXPECT_LE(c.x, 9.0 + 1e-9);
  }
  EXPECT_LT(min_x, 1.1);
  EXPECT_GT(max_x, 8.9);
}

TEST(GroupedQueryTest, ToStringMentionsSizes) {
  const GroupedQuery q{{0.5, 1.5, 3600}};
  const std::string s = q.ToString();
  EXPECT_NE(s.find("0.5"), std::string::npos);
  EXPECT_NE(s.find("3600"), std::string::npos);
}

}  // namespace
}  // namespace blot
