// Validates the analytic cost model of Section IV against ground truth:
// Monte-Carlo estimates of Np (the paper's Eq. 8 definition) and the
// noise-free simulator (Eq. 6/7 semantics).
#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "gen/taxi_generator.h"
#include "simenv/simulator.h"
#include "util/error.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;
  ReplicaSketch sketch;

  explicit Fixture(std::size_t spatial = 16, std::size_t temporal = 8,
                   const char* encoding = "ROW-GZIP") {
    TaxiFleetConfig config;
    config.num_taxis = 15;
    config.samples_per_taxi = 400;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
    sketch = ReplicaSketch::FromReplica(Replica::Build(
        dataset,
        {{.spatial_partitions = spatial, .temporal_partitions = temporal},
         EncodingScheme::FromName(encoding)},
        universe));
  }
};

TEST(IntersectionProbabilityTest, FullCoverageQueryAlwaysIntersects) {
  const Fixture f;
  const RangeSize whole = f.universe.Size();
  for (std::size_t p = 0; p < f.sketch.index.NumPartitions(); ++p)
    EXPECT_DOUBLE_EQ(
        IntersectionProbability(f.sketch.index.Range(p), whole, f.universe),
        1.0);
}

TEST(IntersectionProbabilityTest, OversizedQueryClampsToOne) {
  const Fixture f;
  const RangeSize huge = {f.universe.Width() * 3, f.universe.Height() * 3,
                          f.universe.Duration() * 3};
  EXPECT_DOUBLE_EQ(IntersectionProbability(f.sketch.index.Range(0), huge,
                                           f.universe),
                   1.0);
}

TEST(IntersectionProbabilityTest, TinyQueryMatchesVolumeFraction) {
  // For a point query (W=H=T→0) on a tiling, the involvement probability
  // of a partition approaches its volume fraction of the universe.
  const Fixture f;
  const RangeSize tiny = {1e-9, 1e-9, 1e-6};
  double total = 0;
  for (std::size_t p = 0; p < f.sketch.index.NumPartitions(); ++p) {
    const double prob = IntersectionProbability(f.sketch.index.Range(p),
                                                tiny, f.universe);
    EXPECT_NEAR(prob,
                f.sketch.index.Range(p).Volume() / f.universe.Volume(),
                1e-6);
    total += prob;
  }
  EXPECT_NEAR(total, 1.0, 1e-5);  // a point query involves ~one partition
}

TEST(IntersectionProbabilityTest, MonteCarloAgreement) {
  // Eq. 12 versus empirical frequency over uniformly-positioned query
  // instances, across several query sizes and partitions.
  const Fixture f;
  Rng rng(21);
  const std::vector<RangeSize> sizes = {
      {f.universe.Width() * 0.05, f.universe.Height() * 0.05,
       f.universe.Duration() * 0.05},
      {f.universe.Width() * 0.3, f.universe.Height() * 0.2,
       f.universe.Duration() * 0.5},
      {f.universe.Width() * 0.9, f.universe.Height() * 0.1,
       f.universe.Duration() * 0.02}};
  constexpr int kTrials = 4000;
  for (const RangeSize& size : sizes) {
    // Pick a handful of partitions to check individually.
    for (std::size_t p = 0; p < f.sketch.index.NumPartitions(); p += 37) {
      const STRange& partition = f.sketch.index.Range(p);
      int hits = 0;
      Rng mc = rng.Fork();
      for (int t = 0; t < kTrials; ++t) {
        const STRange instance =
            SampleQueryInstance({size}, f.universe, mc);
        if (partition.Intersects(instance)) ++hits;
      }
      const double predicted =
          IntersectionProbability(partition, size, f.universe);
      EXPECT_NEAR(static_cast<double>(hits) / kTrials, predicted, 0.03)
          << "partition " << p;
    }
  }
}

TEST(ExpectedInvolvedPartitionsTest, MatchesMonteCarloCount) {
  const Fixture f;
  Rng rng(23);
  for (const double frac : {0.05, 0.2, 0.5}) {
    const RangeSize size = {f.universe.Width() * frac,
                            f.universe.Height() * frac,
                            f.universe.Duration() * frac};
    const double predicted =
        ExpectedInvolvedPartitions(f.sketch.index, size, f.universe);
    double total = 0;
    constexpr int kTrials = 2000;
    for (int t = 0; t < kTrials; ++t) {
      const STRange instance = SampleQueryInstance({size}, f.universe, rng);
      total += static_cast<double>(f.sketch.index.CountInvolved(instance));
    }
    const double empirical = total / kTrials;
    EXPECT_NEAR(predicted / empirical, 1.0, 0.05) << "fraction " << frac;
  }
}

TEST(CostModelTest, ConcreteQueryCostMatchesNoiseFreeSimulator) {
  const Fixture f;
  const EnvironmentModel env = EnvironmentModel::AmazonS3Emr();
  const CostModel model(env);
  Simulator sim(env, {.noise_fraction = 0.0});
  Rng rng(25);
  for (int trial = 0; trial < 30; ++trial) {
    const RangeSize size = {
        f.universe.Width() * rng.NextDouble(0.05, 0.7),
        f.universe.Height() * rng.NextDouble(0.05, 0.7),
        f.universe.Duration() * rng.NextDouble(0.05, 0.7)};
    const STRange query = SampleQueryInstance({size}, f.universe, rng);
    EXPECT_NEAR(model.QueryCostMs(f.sketch, query),
                sim.ExecuteQuery(f.sketch, query).total_cost_ms, 1e-6);
  }
}

TEST(CostModelTest, GroupedCostMatchesAverageSimulatedCost) {
  // The paper's key accuracy claim: the closed-form grouped-query cost
  // equals the average cost over uniformly-positioned instances.
  const Fixture f;
  const EnvironmentModel env = EnvironmentModel::LocalHadoop();
  const CostModel model(env);
  Simulator sim(env, {.noise_fraction = 0.0});
  Rng rng(27);
  const GroupedQuery grouped{{f.universe.Width() * 0.25,
                              f.universe.Height() * 0.25,
                              f.universe.Duration() * 0.25}};
  const double predicted = model.QueryCostMs(f.sketch, grouped);
  double total = 0;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t)
    total += sim.ExecuteQuery(f.sketch,
                              SampleQueryInstance(grouped, f.universe, rng))
                 .total_cost_ms;
  EXPECT_NEAR(predicted / (total / kTrials), 1.0, 0.05);
}

TEST(CostModelTest, UsesMeasuredParamsWhenProvided) {
  const Fixture f;
  std::map<std::string, ScanCostParams> params;
  params["ROW-GZIP"] = {100.0, 5000.0};
  CostModel model(std::move(params));
  // Whole-universe query: every partition involved, all records scanned.
  const double cost = model.QueryCostMs(f.sketch, f.universe);
  const double expected =
      static_cast<double>(f.sketch.total_records) / 1000.0 * 100.0 +
      static_cast<double>(f.sketch.index.NumPartitions()) * 5000.0;
  EXPECT_NEAR(cost, expected, 1e-6);
  EXPECT_THROW(
      model.Params(EncodingScheme::FromName("COL-LZMA")), InvalidArgument);
}

TEST(CostModelTest, WorkloadCostIsWeightedBestReplicaSum) {
  const Fixture coarse(4, 2, "ROW-PLAIN");
  const Fixture fine(64, 16, "ROW-PLAIN");
  const CostModel model(EnvironmentModel::AmazonS3Emr());
  Workload workload;
  workload.Add({{coarse.universe.Width() * 0.1,
                 coarse.universe.Height() * 0.1,
                 coarse.universe.Duration() * 0.1}},
               2.0);
  workload.Add({coarse.universe.Size()}, 1.0);
  const std::vector<ReplicaSketch> replicas = {coarse.sketch, fine.sketch};
  const double combined = model.WorkloadCostMs(replicas, workload);
  double expected = 0;
  for (const WeightedQuery& wq : workload.queries())
    expected += wq.weight * std::min(model.QueryCostMs(coarse.sketch, wq.query),
                                     model.QueryCostMs(fine.sketch, wq.query));
  EXPECT_NEAR(combined, expected, 1e-9);
  EXPECT_TRUE(std::isinf(model.WorkloadCostMs({}, workload)));
}

TEST(CostModelTest, FinerPartitioningWinsSmallQueriesCoarseWinsLarge) {
  // The paper's Figure 2 intuition: small partitions prune better for
  // small queries but pay ExtraTime per partition on large queries. This
  // only shows at realistic data scales (the paper's 65M+ records), so
  // the sketches are scaled from the sample.
  const Fixture f;
  constexpr std::uint64_t kTotalRecords = 50'000'000;
  const EncodingScheme plain = EncodingScheme::FromName("ROW-PLAIN");
  const ReplicaSketch coarse = ReplicaSketch::FromSample(
      f.dataset, {{.spatial_partitions = 4, .temporal_partitions = 2}, plain},
      f.universe, kTotalRecords, 1.0);
  const ReplicaSketch fine = ReplicaSketch::FromSample(
      f.dataset,
      {{.spatial_partitions = 256, .temporal_partitions = 32}, plain},
      f.universe, kTotalRecords, 1.0);
  const CostModel model(EnvironmentModel::LocalHadoop());
  const GroupedQuery small{{f.universe.Width() * 0.02,
                            f.universe.Height() * 0.02,
                            f.universe.Duration() * 0.02}};
  const GroupedQuery large{f.universe.Size()};
  EXPECT_LT(model.QueryCostMs(fine, small), model.QueryCostMs(coarse, small));
  EXPECT_LT(model.QueryCostMs(coarse, large), model.QueryCostMs(fine, large));
}

}  // namespace
}  // namespace blot
