#include "core/drift.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace blot {
namespace {

RangeSize Small() { return {0.01, 0.01, 3600}; }
RangeSize Large() { return {1.0, 1.0, 86400.0 * 7} ; }

TEST(WorkloadTrackerTest, ValidatesConstruction) {
  EXPECT_THROW(WorkloadTracker(0.0), InvalidArgument);
  EXPECT_THROW(WorkloadTracker(1.5), InvalidArgument);
  EXPECT_THROW(WorkloadTracker(0.9, 2), InvalidArgument);
}

TEST(WorkloadTrackerTest, SnapshotReflectsObservations) {
  WorkloadTracker tracker;
  for (int i = 0; i < 30; ++i) tracker.Observe(Small());
  for (int i = 0; i < 10; ++i) tracker.Observe(Large());
  EXPECT_EQ(tracker.observations(), 40u);
  const Workload snapshot = tracker.Snapshot(2);
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_NEAR(snapshot.TotalWeight(), 1.0, 1e-9);
  // The small-query cluster carries roughly 3x the weight.
  const bool first_small =
      snapshot.queries()[0].query.size.w < snapshot.queries()[1].query.size.w;
  const double small_weight =
      snapshot.queries()[first_small ? 0 : 1].weight;
  EXPECT_GT(small_weight, 0.6);
}

TEST(WorkloadTrackerTest, DecayForgetsOldRegime) {
  WorkloadTracker tracker(0.9);
  for (int i = 0; i < 50; ++i) tracker.Observe(Small());
  for (int i = 0; i < 100; ++i) tracker.Observe(Large());
  const Workload snapshot = tracker.Snapshot(2);
  // After 100 large observations at decay 0.9, the small cluster's mass
  // is ~0.9^100 of each large observation: effectively gone.
  double large_weight = 0;
  for (const WeightedQuery& wq : snapshot.queries())
    if (wq.query.size.w > 0.5) large_weight += wq.weight;
  EXPECT_GT(large_weight, 0.99);
}

TEST(WorkloadTrackerTest, CompactionBoundsMemoryWithoutLosingShape) {
  WorkloadTracker tracker(1.0, 64);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double jitter = std::exp(rng.NextGaussian() * 0.1);
    if (i % 2 == 0) {
      tracker.Observe({0.01 * jitter, 0.01 * jitter, 3600 * jitter});
    } else {
      tracker.Observe({0.5 * jitter, 0.5 * jitter, 86400.0 * jitter});
    }
  }
  const Workload snapshot = tracker.Snapshot(2);
  ASSERT_EQ(snapshot.size(), 2u);
  // Both modes survive compaction with roughly equal mass.
  EXPECT_NEAR(snapshot.queries()[0].weight, 0.5, 0.15);
}

TEST(WorkloadTrackerTest, EmptyTrackerSnapshotsEmpty) {
  const WorkloadTracker tracker;
  EXPECT_TRUE(tracker.Snapshot().empty());
}

TEST(WorkloadDistanceTest, IdenticalWorkloadsAtZero) {
  Workload w;
  w.Add({Small()}, 1.0);
  w.Add({Large()}, 2.0);
  EXPECT_NEAR(WorkloadDistance(w, w), 0.0, 1e-12);
}

TEST(WorkloadDistanceTest, GrowsWithSizeShift) {
  Workload a, b, c;
  a.Add({Small()}, 1.0);
  b.Add({{Small().w * 2, Small().h * 2, Small().t * 2}}, 1.0);
  c.Add({{Small().w * 100, Small().h * 100, Small().t * 100}}, 1.0);
  const double near = WorkloadDistance(a, b);
  const double far = WorkloadDistance(a, c);
  EXPECT_GT(near, 0.0);
  EXPECT_GT(far, near * 3);
  EXPECT_NEAR(WorkloadDistance(a, b), WorkloadDistance(b, a), 1e-12);
}

TEST(WorkloadDistanceTest, WeightShiftMatters) {
  Workload mostly_small, mostly_large;
  mostly_small.Add({Small()}, 9.0);
  mostly_small.Add({Large()}, 1.0);
  mostly_large.Add({Small()}, 1.0);
  mostly_large.Add({Large()}, 9.0);
  // Supports are identical, so nearest-neighbour distance is zero — the
  // metric tracks size drift, not pure weight drift (weight drift shows
  // up once sizes move).
  EXPECT_NEAR(WorkloadDistance(mostly_small, mostly_large), 0.0, 1e-12);
}

TEST(DriftMonitorTest, DetectsRegimeChange) {
  Workload reference;
  reference.Add({Small()}, 1.0);
  const DriftMonitor monitor(reference, 0.5);

  Workload same;
  same.Add({{Small().w * 1.1, Small().h * 0.9, Small().t}}, 1.0);
  EXPECT_FALSE(monitor.HasDrifted(same));

  Workload shifted;
  shifted.Add({Large()}, 1.0);
  EXPECT_TRUE(monitor.HasDrifted(shifted));
  EXPECT_GT(monitor.DistanceTo(shifted), monitor.DistanceTo(same));
}

TEST(DriftMonitorTest, RebaseResetsReference) {
  Workload reference;
  reference.Add({Small()}, 1.0);
  DriftMonitor monitor(reference, 0.5);
  Workload shifted;
  shifted.Add({Large()}, 1.0);
  ASSERT_TRUE(monitor.HasDrifted(shifted));
  monitor.Rebase(shifted);
  EXPECT_FALSE(monitor.HasDrifted(shifted));
}

TEST(DriftMonitorTest, ValidatesArguments) {
  EXPECT_THROW(DriftMonitor(Workload(), 0.5), InvalidArgument);
  Workload w;
  w.Add({Small()}, 1.0);
  EXPECT_THROW(DriftMonitor(w, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace blot
