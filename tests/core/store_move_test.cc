// Regression tests for BlotStore's move operations.
//
// BlotStore used to default its moves while owning background-repair
// state whose tasks capture the store's address: moving a store with a
// repair in flight gutted sync_/health_/telemetry_ under the running
// task (use-after-move on another thread — a crash or TSan report,
// depending on timing). Moves now drain outstanding repairs on the
// source (and the target, for assignment) before transferring members.
#include <gtest/gtest.h>

#include <utility>

#include "common/fixtures.h"
#include "core/store.h"
#include "testing/oracle.h"

namespace blot {
namespace {

using test::CentroidQuery;
using test::CorruptInvolved;
using test::MakeStandardStore;
using test::Sorted;
using test::TaxiFixture;

CostModel Model() { return CostModel{EnvironmentModel::LocalHadoop()}; }

// Corrupts the routed replica's copies and executes under
// RepairMode::kBackground, so a repair task holding the store's address
// is (potentially still) running when the function returns.
STRange DegradeAndScheduleBackgroundRepair(BlotStore& store,
                                           ThreadPool& pool) {
  FailoverPolicy policy;
  policy.repair = RepairMode::kBackground;
  store.SetFailoverPolicy(policy);
  const STRange query = CentroidQuery(store.universe(), 0.3);
  const std::size_t victim = store.RouteQuery(query, Model());
  EXPECT_FALSE(CorruptInvolved(store, victim, query).empty());
  store.Execute(query, Model(), &pool);
  return query;
}

TEST(StoreMoveTest, MoveConstructionWaitsForBackgroundRepairs) {
  const TaxiFixture fleet;
  const testing::Oracle oracle(fleet.dataset);
  ThreadPool pool(2);
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  const STRange query = DegradeAndScheduleBackgroundRepair(store, pool);

  // With the old defaulted move this raced the in-flight repair task.
  BlotStore moved = std::move(store);

  // The move drained the repair: the quarantined copies are healthy
  // again and the moved-to store serves correct answers.
  EXPECT_EQ(moved.health().QuarantinedCount(), 0u);
  const auto routed = moved.Execute(query, Model(), &pool);
  EXPECT_EQ(Sorted(routed.result.records), Sorted(oracle.RangeQuery(query)));
  EXPECT_FALSE(routed.degraded);
}

TEST(StoreMoveTest, MoveAssignmentDrainsBothSides) {
  const TaxiFixture fleet;
  const testing::Oracle oracle(fleet.dataset);
  ThreadPool pool(2);
  BlotStore source = MakeStandardStore(fleet.dataset, fleet.universe);
  BlotStore target = MakeStandardStore(fleet.dataset, fleet.universe, 3);
  const STRange query = DegradeAndScheduleBackgroundRepair(source, pool);
  DegradeAndScheduleBackgroundRepair(target, pool);

  target = std::move(source);

  EXPECT_EQ(target.NumReplicas(), 2u);
  EXPECT_EQ(target.health().QuarantinedCount(), 0u);
  const auto routed = target.Execute(query, Model(), &pool);
  EXPECT_EQ(Sorted(routed.result.records), Sorted(oracle.RangeQuery(query)));
}

TEST(StoreMoveTest, MovedFromStoreDestructsSafely) {
  const TaxiFixture fleet;
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  {
    BlotStore moved = std::move(store);
    EXPECT_EQ(moved.NumReplicas(), 2u);
  }
  // `store` is now gutted (null boxed state); destruction must not touch
  // it. Leaving the scope exercises exactly that.
}

}  // namespace
}  // namespace blot
