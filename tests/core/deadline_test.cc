// Per-query deadlines end to end: CancelToken semantics, cooperative
// scan cancellation with partition-exact coverage, the structured
// DeadlineExceededError, graceful degradation via ExecOptions::
// allow_partial, and the serving layer's admission-clock deadline
// (docs/robustness.md, docs/serving.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "blot/encoding_scheme.h"
#include "blot/replica.h"
#include "common/fixtures.h"
#include "core/cost_model.h"
#include "core/fault_injection.h"
#include "core/store.h"
#include "serve/server.h"
#include "simenv/environment.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace blot {
namespace {

using test::Sorted;
using test::TaxiFixture;

CostModel Model() { return CostModel{EnvironmentModel::LocalHadoop()}; }

// Arms the global injector for one test body; always disarms.
struct ScopedInjector {
  explicit ScopedInjector(const FaultPlan& plan) {
    FaultInjector::Global().Arm(plan);
  }
  ~ScopedInjector() { FaultInjector::Global().Disarm(); }
};

// A plan that stalls every partition read of `replica` (empty = all
// replicas) by `stall_ms`, on every read.
FaultPlan StallPlan(double stall_ms, const std::string& replica = "") {
  FaultPlan plan;
  plan.seed = 17;
  plan.probability = 1.0;
  plan.kinds = {FaultKind::kLatency};
  plan.max_fires_per_target = 0;  // never goes quiet
  plan.latency_ms = static_cast<std::uint32_t>(stall_ms);
  plan.replica = replica;
  return plan;
}

// --- CancelToken unit coverage -----------------------------------------

TEST(CancelTokenTest, InertTokenIsFreeAndNeverStops) {
  const CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  token.Cancel(CancelReason::kAbandoned);  // no-op, must not crash
  EXPECT_FALSE(token.ShouldStop());
}

TEST(CancelTokenTest, FirstCancelReasonWinsAndLatches) {
  const CancelToken token = CancelToken::Create();
  EXPECT_FALSE(token.ShouldStop());
  token.Cancel(CancelReason::kHedgeLost);
  token.Cancel(CancelReason::kAbandoned);  // loses the race
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.reason(), CancelReason::kHedgeLost);
  EXPECT_FALSE(token.DeadlineExpired());
}

TEST(CancelTokenTest, DeadlineExpiryLatchesDeadlineReason) {
  const CancelToken token = CancelToken::WithDeadline(0.5);
  EXPECT_TRUE(token.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_TRUE(token.DeadlineExpired());
  // A later explicit cancel cannot overwrite the latched reason.
  token.Cancel(CancelReason::kAbandoned);
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancelTokenTest, ChildObservesParentButCancelsIndependently) {
  const CancelToken parent = CancelToken::Create();
  const CancelToken loser = parent.Child();
  const CancelToken winner = parent.Child();

  // Cancelling one child (the hedge loser) touches neither the parent
  // nor its sibling.
  loser.Cancel(CancelReason::kHedgeLost);
  EXPECT_TRUE(loser.ShouldStop());
  EXPECT_FALSE(parent.ShouldStop());
  EXPECT_FALSE(winner.ShouldStop());

  // Cancelling the parent stops every child.
  parent.Cancel(CancelReason::kAbandoned);
  EXPECT_TRUE(winner.ShouldStop());
  EXPECT_EQ(winner.reason(), CancelReason::kAbandoned);
  // The loser keeps its own earlier reason (nearest in the chain wins).
  EXPECT_EQ(loser.reason(), CancelReason::kHedgeLost);
}

TEST(CancelTokenTest, ChildInheritsParentDeadline) {
  const CancelToken parent = CancelToken::WithDeadline(0.5);
  const CancelToken child = parent.Child();
  EXPECT_TRUE(child.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_TRUE(child.DeadlineExpired());
}

// --- Replica-level cooperative cancellation ----------------------------

TEST(DeadlineTest, CancelledScanReportsExactCoverage) {
  const TaxiFixture fixture;
  const Replica replica = Replica::Build(
      fixture.dataset,
      {{.spatial_partitions = 4, .temporal_partitions = 2},
       EncodingScheme::FromName("ROW-SNAPPY")},
      fixture.universe);

  const STRange query = fixture.universe;
  const std::vector<std::size_t> involved =
      replica.index().InvolvedPartitions(query);
  ASSERT_FALSE(involved.empty());

  // A token cancelled before the scan starts: every involved partition
  // must be reported missed, and no partial records may leak.
  CancelToken token = CancelToken::Create();
  token.Cancel(CancelReason::kAbandoned);
  ScanOptions options;
  options.cancel = &token;
  const QueryResult result = replica.Execute(query, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_TRUE(result.records.empty());
  EXPECT_TRUE(result.served_partitions.empty());
  std::vector<std::size_t> missed = result.missed_partitions;
  std::vector<std::size_t> expected_missed = involved;
  std::sort(expected_missed.begin(), expected_missed.end());
  EXPECT_EQ(missed, expected_missed);
}

// --- Store-level deadlines ---------------------------------------------

TEST(DeadlineTest, ExpiredDeadlineThrowsStructuredError) {
  const TaxiFixture fixture;
  BlotStore store = test::MakeStandardStore(fixture.dataset,
                                            fixture.universe, 2);
  const ScopedInjector injector(StallPlan(30.0));

  BlotStore::ExecOptions exec;
  exec.deadline_ms = 5.0;  // every partition read stalls 30ms: unmeetable
  try {
    store.Execute(fixture.universe, Model(), exec);
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_DOUBLE_EQ(e.deadline_ms(), 5.0);
    EXPECT_GE(e.attempts(), 1u);
    // The error reports how far the query got; with every read stalled
    // past the whole budget, nothing can have been served.
    EXPECT_EQ(e.partitions_served(), 0u);
    EXPECT_GT(e.partitions_missed(), 0u);
  }
}

TEST(DeadlineTest, AllowPartialTurnsExpiryIntoCoverageReport) {
  const TaxiFixture fixture;
  BlotStore store = test::MakeStandardStore(fixture.dataset,
                                            fixture.universe, 2);
  const ScopedInjector injector(StallPlan(30.0));

  BlotStore::ExecOptions exec;
  exec.deadline_ms = 5.0;
  exec.allow_partial = true;
  const BlotStore::RoutedResult routed =
      store.Execute(fixture.universe, Model(), exec);
  EXPECT_TRUE(routed.partial);
  EXPECT_TRUE(routed.result.truncated);
  EXPECT_FALSE(routed.result.missed_partitions.empty());
  // Coverage is partition-exact: no records without served partitions.
  if (routed.result.served_partitions.empty())
    EXPECT_TRUE(routed.result.records.empty());
}

TEST(DeadlineTest, DeadlineMidParallelScanKeepsCoverageExact) {
  const TaxiFixture fixture;
  Dataset dataset = fixture.dataset;
  BlotStore store(dataset, fixture.universe);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 2},
                    EncodingScheme::FromName("ROW-SNAPPY")});
  const STRange query = fixture.universe;

  // Every partition read stalls 60ms; with a 90ms deadline and a
  // 2-worker scan pool the first wave of partitions completes inside the
  // budget and the next wave is cancelled at its first block boundary —
  // a genuine mid-scan expiry, not an up-front one.
  const ScopedInjector injector(StallPlan(60.0));
  ThreadPool pool(2, "deadline-test");
  BlotStore::ExecOptions exec;
  exec.pool = &pool;
  exec.deadline_ms = 90.0;
  exec.allow_partial = true;
  const BlotStore::RoutedResult routed = store.Execute(query, Model(), exec);

  ASSERT_TRUE(routed.partial);
  EXPECT_FALSE(routed.result.served_partitions.empty());
  EXPECT_FALSE(routed.result.missed_partitions.empty());

  // The returned records must be *exactly* the query's matches in the
  // served partitions — a served partition contributes everything, an
  // interrupted one nothing. Suspend keeps the verification reads clean
  // without resetting the injector.
  const FaultInjector::Suspend suspend(FaultInjector::Global());
  const Replica& replica = store.replica(routed.replica_index);
  std::vector<Record> expected;
  for (const std::size_t p : routed.result.served_partitions)
    for (const Record& rec : replica.DecodePartitionRecords(p))
      if (query.Contains(rec.Position())) expected.push_back(rec);
  EXPECT_EQ(Sorted(routed.result.records), Sorted(expected));
}

TEST(DeadlineTest, GenerousDeadlineDoesNotPerturbResults) {
  const TaxiFixture fixture;
  BlotStore store = test::MakeStandardStore(fixture.dataset,
                                            fixture.universe, 2);
  const STRange query = test::CentroidQuery(fixture.universe, 0.5);
  const std::vector<Record> baseline =
      Sorted(store.Execute(query, Model()).result.records);

  BlotStore::ExecOptions exec;
  exec.deadline_ms = 60'000.0;
  exec.allow_partial = true;
  const BlotStore::RoutedResult routed = store.Execute(query, Model(), exec);
  EXPECT_FALSE(routed.partial);
  EXPECT_EQ(Sorted(routed.result.records), baseline);
}

// --- Serving-layer deadlines -------------------------------------------

TEST(DeadlineTest, ServerDeadlineCoversQueueWaitAndExecution) {
  const TaxiFixture fixture;
  BlotStore store = test::MakeStandardStore(fixture.dataset,
                                            fixture.universe, 1);
  const ScopedInjector injector(StallPlan(60.0));

  serve::ServerOptions options;
  options.worker_threads = 1;  // the second query must queue
  options.default_deadline_ms = 25.0;
  serve::QueryServer server(store, Model(), options);

  // Both queries carry a 25ms budget against 60ms-per-partition stalls:
  // the first expires mid-execution, the second expires while still
  // queued behind it and is abandoned without executing.
  auto first = server.Submit(fixture.universe);
  auto second = server.Submit(fixture.universe);
  EXPECT_THROW(first.get(), DeadlineExceededError);
  try {
    second.get();
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_NE(std::string(e.what()).find("queue"), std::string::npos)
        << e.what();
  }
  const serve::ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 2u);
  EXPECT_EQ(stats.completed, 0u);

  // A per-request override outlives the stalls and succeeds.
  const BlotStore::RoutedResult ok =
      server.Execute(test::CentroidQuery(fixture.universe, 0.3),
                     /*deadline_ms=*/60'000.0);
  EXPECT_FALSE(ok.partial);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(DeadlineTest, ServerAllowPartialCountsPartialResults) {
  const TaxiFixture fixture;
  BlotStore store = test::MakeStandardStore(fixture.dataset,
                                            fixture.universe, 1);
  const ScopedInjector injector(StallPlan(60.0));

  serve::ServerOptions options;
  options.worker_threads = 1;
  options.default_deadline_ms = 25.0;
  options.allow_partial = true;
  serve::QueryServer server(store, Model(), options);

  const BlotStore::RoutedResult routed = server.Execute(fixture.universe);
  EXPECT_TRUE(routed.partial);
  const serve::ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.partial, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.completed, 1u);
}

}  // namespace
}  // namespace blot
