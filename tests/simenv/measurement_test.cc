#include "simenv/measurement.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace blot {
namespace {

TEST(MeasurementTest, NoiseFreeMeasurementRecoversExactParams) {
  const EnvironmentModel env = EnvironmentModel::AmazonS3Emr();
  Simulator sim(env, {.noise_fraction = 0.0});
  for (const EncodingScheme& scheme : AllEncodingSchemes()) {
    const MeasuredScanParams measured = MeasureScanParams(sim, scheme);
    const ScanCostParams& truth = env.Params(scheme);
    EXPECT_NEAR(measured.params.scan_ms_per_krecord,
                truth.scan_ms_per_krecord, 1e-6)
        << scheme.Name();
    EXPECT_NEAR(measured.params.extra_ms, truth.extra_ms, 1e-3)
        << scheme.Name();
    EXPECT_NEAR(measured.r_squared, 1.0, 1e-9);
  }
}

TEST(MeasurementTest, NoisyMeasurementRecoversParamsApproximately) {
  // Section V-B's procedure with realistic noise: averaging 20 partitions
  // per size then regressing should land within a few percent.
  const EnvironmentModel env = EnvironmentModel::LocalHadoop();
  Simulator sim(env, {.noise_fraction = 0.05, .seed = 42});
  const EncodingScheme scheme = EncodingScheme::FromName("COL-GZIP");
  const MeasuredScanParams measured = MeasureScanParams(sim, scheme);
  const ScanCostParams& truth = env.Params(scheme);
  EXPECT_NEAR(measured.params.scan_ms_per_krecord, truth.scan_ms_per_krecord,
              truth.scan_ms_per_krecord * 0.10);
  EXPECT_NEAR(measured.params.extra_ms, truth.extra_ms,
              truth.extra_ms * 0.25);
  EXPECT_GT(measured.r_squared, 0.98);
}

TEST(MeasurementTest, ProducesOnePointPerPartitionSize) {
  Simulator sim(EnvironmentModel::AmazonS3Emr(), {.noise_fraction = 0.0});
  MeasurementOptions options;
  options.partition_sizes = {1000, 5000, 10000};
  const MeasuredScanParams measured = MeasureScanParams(
      sim, EncodingScheme::FromName("ROW-PLAIN"), options);
  ASSERT_EQ(measured.points.size(), 3u);
  EXPECT_EQ(measured.points[0].first, 1000u);
  EXPECT_EQ(measured.points[2].first, 10000u);
  // Costs increase with partition size.
  EXPECT_LT(measured.points[0].second, measured.points[2].second);
}

TEST(MeasurementTest, ValidatesOptions) {
  Simulator sim(EnvironmentModel::AmazonS3Emr());
  MeasurementOptions one_size;
  one_size.partition_sizes = {1000};
  EXPECT_THROW(MeasureScanParams(sim, EncodingScheme::FromName("ROW-PLAIN"),
                                 one_size),
               InvalidArgument);
  MeasurementOptions zero_partitions;
  zero_partitions.partitions_per_set = 0;
  EXPECT_THROW(MeasureScanParams(sim, EncodingScheme::FromName("ROW-PLAIN"),
                                 zero_partitions),
               InvalidArgument);
}

}  // namespace
}  // namespace blot
