#include "simenv/replica_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;
  ReplicaConfig config{{.spatial_partitions = 16, .temporal_partitions = 4},
                       EncodingScheme::FromName("ROW-GZIP")};

  Fixture() {
    TaxiFleetConfig fleet;
    fleet.num_taxis = 10;
    fleet.samples_per_taxi = 400;
    dataset = GenerateTaxiFleet(fleet);
    universe = fleet.Universe();
  }
};

TEST(ReplicaSketchTest, FromReplicaIsExact) {
  const Fixture f;
  const Replica replica = Replica::Build(f.dataset, f.config, f.universe);
  const ReplicaSketch sketch = ReplicaSketch::FromReplica(replica);
  EXPECT_EQ(sketch.config, f.config);
  EXPECT_EQ(sketch.total_records, f.dataset.size());
  EXPECT_EQ(sketch.storage_bytes, replica.StorageBytes());
  EXPECT_EQ(sketch.index.NumPartitions(), replica.NumPartitions());
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < sketch.counts.size(); ++p) {
    EXPECT_EQ(sketch.counts[p], replica.partition(p).num_records);
    sum += sketch.counts[p];
  }
  EXPECT_EQ(sum, f.dataset.size());
}

TEST(ReplicaSketchTest, FromSampleScalesCounts) {
  const Fixture f;
  Rng rng(3);
  const Dataset sample = f.dataset.Sample(f.dataset.size() / 4, rng);
  const std::uint64_t total = 100 * f.dataset.size();
  const double ratio = 0.3;
  const ReplicaSketch sketch =
      ReplicaSketch::FromSample(sample, f.config, f.universe, total, ratio);
  EXPECT_EQ(sketch.total_records, total);
  EXPECT_EQ(sketch.index.NumPartitions(),
            f.config.partitioning.TotalPartitions());
  const std::uint64_t sum =
      std::accumulate(sketch.counts.begin(), sketch.counts.end(),
                      std::uint64_t{0});
  // Scaled counts sum to ~total (rounding per partition).
  EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(total),
              static_cast<double>(sketch.counts.size()));
  EXPECT_EQ(sketch.storage_bytes,
            static_cast<std::uint64_t>(std::llround(
                static_cast<double>(total) * kRecordRowBytes * ratio)));
}

TEST(ReplicaSketchTest, SampledSketchApproximatesFullSketch) {
  // The paper's premise: a small sample suffices to sketch the replica.
  // Compare per-partition distributions between a sketch from a 25%
  // sample and the exact replica.
  const Fixture f;
  const Replica replica = Replica::Build(f.dataset, f.config, f.universe);
  const ReplicaSketch exact = ReplicaSketch::FromReplica(replica);
  Rng rng(7);
  const Dataset sample = f.dataset.Sample(f.dataset.size() / 4, rng);
  const ReplicaSketch approx = ReplicaSketch::FromSample(
      sample, f.config, f.universe, f.dataset.size(), 0.5);
  ASSERT_EQ(approx.counts.size(), exact.counts.size());
  // Mean absolute relative deviation of per-partition counts stays small.
  double total_deviation = 0;
  const double expected_per_partition =
      static_cast<double>(f.dataset.size()) /
      static_cast<double>(exact.counts.size());
  for (std::size_t p = 0; p < exact.counts.size(); ++p)
    total_deviation += std::abs(static_cast<double>(approx.counts[p]) -
                                static_cast<double>(exact.counts[p]));
  const double mean_deviation =
      total_deviation / static_cast<double>(exact.counts.size());
  EXPECT_LT(mean_deviation / expected_per_partition, 0.35);
}

TEST(ReplicaSketchTest, MeanRecordsPerPartition) {
  const Fixture f;
  const Replica replica = Replica::Build(f.dataset, f.config, f.universe);
  const ReplicaSketch sketch = ReplicaSketch::FromReplica(replica);
  EXPECT_NEAR(sketch.MeanRecordsPerPartition(),
              static_cast<double>(f.dataset.size()) /
                  static_cast<double>(f.config.partitioning.TotalPartitions()),
              1e-9);
}

TEST(ReplicaSketchTest, FromSampleValidatesInput) {
  const Fixture f;
  EXPECT_THROW(ReplicaSketch::FromSample(Dataset(), f.config, f.universe,
                                         1000, 0.5),
               InvalidArgument);
  EXPECT_THROW(ReplicaSketch::FromSample(f.dataset, f.config, f.universe,
                                         1000, 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace blot
