#include "simenv/simulator.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

ReplicaSketch FleetSketch(const EncodingScheme& encoding, STRange& universe) {
  TaxiFleetConfig config;
  config.num_taxis = 10;
  config.samples_per_taxi = 300;
  const Dataset d = GenerateTaxiFleet(config);
  universe = config.Universe();
  const ReplicaConfig rc{
      {.spatial_partitions = 8, .temporal_partitions = 4}, encoding};
  return ReplicaSketch::FromReplica(Replica::Build(d, rc, universe));
}

TEST(SimulatorTest, NoiseFreeScanMatchesEnvironmentTruth) {
  const EnvironmentModel env = EnvironmentModel::AmazonS3Emr();
  Simulator sim(env, {.noise_fraction = 0.0});
  const EncodingScheme scheme = EncodingScheme::FromName("COL-GZIP");
  EXPECT_DOUBLE_EQ(sim.PartitionScanMs(scheme, 50000),
                   env.PartitionScanMs(scheme, 50000));
}

TEST(SimulatorTest, NoiseIsBoundedAndCentered) {
  Simulator sim(EnvironmentModel::LocalHadoop(), {.noise_fraction = 0.05});
  const EncodingScheme scheme = EncodingScheme::FromName("ROW-PLAIN");
  const double truth =
      EnvironmentModel::LocalHadoop().PartitionScanMs(scheme, 100000);
  double sum = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    const double v = sim.PartitionScanMs(scheme, 100000);
    EXPECT_GT(v, truth * 0.5);
    EXPECT_LT(v, truth * 1.5);
    sum += v;
  }
  EXPECT_NEAR(sum / kN / truth, 1.0, 0.01);
}

TEST(SimulatorTest, QueryCostSumsInvolvedPartitions) {
  STRange universe;
  const ReplicaSketch sketch =
      FleetSketch(EncodingScheme::FromName("ROW-PLAIN"), universe);
  const EnvironmentModel env = EnvironmentModel::AmazonS3Emr();
  Simulator sim(env, {.noise_fraction = 0.0});

  const SimQueryResult whole = sim.ExecuteQuery(sketch, universe);
  EXPECT_EQ(whole.partitions_scanned, sketch.index.NumPartitions());
  EXPECT_EQ(whole.records_scanned, sketch.total_records);
  double expected = 0;
  for (std::size_t p = 0; p < sketch.index.NumPartitions(); ++p)
    expected += env.PartitionScanMs(sketch.config.encoding,
                                    sketch.counts[p]);
  EXPECT_NEAR(whole.total_cost_ms, expected, 1e-6);
}

TEST(SimulatorTest, MakespanBetweenBoundsAndBelowTotal) {
  STRange universe;
  const ReplicaSketch sketch =
      FleetSketch(EncodingScheme::FromName("ROW-GZIP"), universe);
  Simulator sim(EnvironmentModel::LocalHadoop(),
                {.noise_fraction = 0.0, .num_mappers = 4});
  const SimQueryResult r = sim.ExecuteQuery(sketch, universe);
  EXPECT_GT(r.partitions_scanned, 4u);
  EXPECT_LT(r.makespan_ms, r.total_cost_ms);
  EXPECT_GE(r.makespan_ms, r.total_cost_ms / 4.0 - 1e-9);
}

TEST(SimulatorTest, SingleMapperMakespanEqualsTotal) {
  STRange universe;
  const ReplicaSketch sketch =
      FleetSketch(EncodingScheme::FromName("ROW-GZIP"), universe);
  Simulator sim(EnvironmentModel::LocalHadoop(),
                {.noise_fraction = 0.0, .num_mappers = 1});
  const SimQueryResult r = sim.ExecuteQuery(sketch, universe);
  EXPECT_NEAR(r.makespan_ms, r.total_cost_ms, 1e-9);
}

TEST(SimulatorTest, EmptyQueryCostsNothing) {
  STRange universe;
  const ReplicaSketch sketch =
      FleetSketch(EncodingScheme::FromName("ROW-PLAIN"), universe);
  Simulator sim(EnvironmentModel::AmazonS3Emr());
  const SimQueryResult r =
      sim.ExecuteQuery(sketch, STRange::FromBounds(0, 1, 0, 1, 0, 1));
  EXPECT_EQ(r.partitions_scanned, 0u);
  EXPECT_EQ(r.total_cost_ms, 0.0);
  EXPECT_EQ(r.makespan_ms, 0.0);
}

TEST(SimulatorTest, ValidatesOptions) {
  EXPECT_THROW(Simulator(EnvironmentModel::AmazonS3Emr(),
                         {.noise_fraction = -0.1}),
               InvalidArgument);
  EXPECT_THROW(Simulator(EnvironmentModel::AmazonS3Emr(),
                         {.num_mappers = 0}),
               InvalidArgument);
}

}  // namespace
}  // namespace blot
