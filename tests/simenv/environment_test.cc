#include "simenv/environment.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace blot {
namespace {

TEST(EnvironmentTest, TableIIConstantsAreLoaded) {
  const EnvironmentModel s3 = EnvironmentModel::AmazonS3Emr();
  const ScanCostParams& row_plain =
      s3.Params(EncodingScheme::FromName("ROW-PLAIN"));
  EXPECT_DOUBLE_EQ(row_plain.scan_ms_per_krecord, 85.02);
  EXPECT_DOUBLE_EQ(row_plain.extra_ms, 32689);

  const EnvironmentModel hadoop = EnvironmentModel::LocalHadoop();
  const ScanCostParams& col_lzma =
      hadoop.Params(EncodingScheme::FromName("COL-LZMA"));
  EXPECT_DOUBLE_EQ(col_lzma.scan_ms_per_krecord, 159.98);
  EXPECT_DOUBLE_EQ(col_lzma.extra_ms, 4551);
}

TEST(EnvironmentTest, AllSevenPaperEncodingsSupported) {
  for (const EnvironmentModel& env :
       {EnvironmentModel::AmazonS3Emr(), EnvironmentModel::LocalHadoop()}) {
    for (const EncodingScheme& scheme : AllEncodingSchemes())
      EXPECT_TRUE(env.Supports(scheme)) << env.name() << " " << scheme.Name();
  }
}

TEST(EnvironmentTest, ColPlainIsUnsupported) {
  const EnvironmentModel s3 = EnvironmentModel::AmazonS3Emr();
  const EncodingScheme col_plain{Layout::kColumn, CodecKind::kNone};
  EXPECT_FALSE(s3.Supports(col_plain));
  EXPECT_THROW(s3.Params(col_plain), InvalidArgument);
}

TEST(EnvironmentTest, PartitionScanMsFollowsEq6) {
  const EnvironmentModel s3 = EnvironmentModel::AmazonS3Emr();
  const EncodingScheme scheme = EncodingScheme::FromName("ROW-PLAIN");
  // 100k records: 100 * 85.02 + 32689.
  EXPECT_NEAR(s3.PartitionScanMs(scheme, 100000), 100 * 85.02 + 32689,
              1e-9);
  // Zero records still pay ExtraTime.
  EXPECT_NEAR(s3.PartitionScanMs(scheme, 0), 32689, 1e-9);
}

TEST(EnvironmentTest, ExtraTimeDominatesInS3ButNotHadoop) {
  // The environments' qualitative difference (Section V): S3/EMR task
  // startup (~30 s) dwarfs per-record cost; the local cluster is the
  // reverse. This asymmetry is what makes different partition
  // granularities win in different environments.
  const EnvironmentModel s3 = EnvironmentModel::AmazonS3Emr();
  const EnvironmentModel hadoop = EnvironmentModel::LocalHadoop();
  const EncodingScheme scheme = EncodingScheme::FromName("ROW-GZIP");
  EXPECT_GT(s3.Params(scheme).extra_ms, 20000);
  EXPECT_LT(hadoop.Params(scheme).extra_ms, 10000);
  EXPECT_GT(hadoop.Params(scheme).scan_ms_per_krecord,
            s3.Params(scheme).scan_ms_per_krecord);
}

TEST(EnvironmentTest, CpuBoundLocalInvertsTheCompressionTradeOff) {
  // In both Table II environments stronger compression also scans faster
  // (IO-bound); the CPU-bound environment restores the classic trade-off:
  // PLAIN scans fastest, LZMA slowest.
  const EnvironmentModel cpu = EnvironmentModel::CpuBoundLocal();
  const double plain =
      cpu.Params(EncodingScheme::FromName("ROW-PLAIN")).scan_ms_per_krecord;
  const double snappy =
      cpu.Params(EncodingScheme::FromName("ROW-SNAPPY")).scan_ms_per_krecord;
  const double gzip =
      cpu.Params(EncodingScheme::FromName("ROW-GZIP")).scan_ms_per_krecord;
  const double lzma =
      cpu.Params(EncodingScheme::FromName("ROW-LZMA")).scan_ms_per_krecord;
  EXPECT_LT(plain, snappy);
  EXPECT_LT(snappy, gzip);
  EXPECT_LT(gzip, lzma);
  // And the opposite holds in the paper's S3 environment.
  const EnvironmentModel s3 = EnvironmentModel::AmazonS3Emr();
  EXPECT_GT(s3.Params(EncodingScheme::FromName("ROW-PLAIN"))
                .scan_ms_per_krecord,
            s3.Params(EncodingScheme::FromName("ROW-LZMA"))
                .scan_ms_per_krecord);
  for (const EncodingScheme& scheme : AllEncodingSchemes())
    EXPECT_TRUE(cpu.Supports(scheme));
}

TEST(EnvironmentTest, RejectsNonPositiveParameters) {
  EXPECT_THROW(
      EnvironmentModel("bad", {{"ROW-PLAIN", {0.0, 10.0}}}),
      InvalidArgument);
  EXPECT_THROW(
      EnvironmentModel("bad", {{"ROW-PLAIN", {1.0, -1.0}}}),
      InvalidArgument);
}

}  // namespace
}  // namespace blot
