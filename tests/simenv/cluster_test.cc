#include "simenv/cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "core/workload.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

namespace blot {
namespace {

struct Fixture {
  Dataset dataset;
  STRange universe;
  ReplicaSketch sketch;

  Fixture() {
    TaxiFleetConfig config;
    config.num_taxis = 10;
    config.samples_per_taxi = 300;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
    sketch = ReplicaSketch::FromReplica(Replica::Build(
        dataset,
        {{.spatial_partitions = 16, .temporal_partitions = 4},
         EncodingScheme::FromName("ROW-GZIP")},
        universe));
  }
};

ClusterConfig NoiseFree(std::size_t nodes, std::size_t slots = 2) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.map_slots_per_node = slots;
  config.noise_fraction = 0.0;
  return config;
}

TEST(SimClusterTest, ValidatesConfig) {
  const EnvironmentModel env = EnvironmentModel::LocalHadoop();
  EXPECT_THROW(SimCluster(env, {.num_nodes = 0}), InvalidArgument);
  EXPECT_THROW(SimCluster(env, {.map_slots_per_node = 0}), InvalidArgument);
  EXPECT_THROW(SimCluster(env, {.replication = 0}), InvalidArgument);
  EXPECT_THROW(SimCluster(env, {.remote_read_penalty = 0.5}),
               InvalidArgument);
}

TEST(SimClusterTest, PlacementHasDistinctNodesPerPartition) {
  const Fixture f;
  ClusterConfig config = NoiseFree(8);
  config.replication = 3;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), config);
  const auto placement = cluster.PlaceReplica(f.sketch);
  ASSERT_EQ(placement.size(), f.sketch.index.NumPartitions());
  for (const auto& nodes : placement) {
    EXPECT_EQ(nodes.size(), 3u);
    EXPECT_EQ(std::set<std::size_t>(nodes.begin(), nodes.end()).size(), 3u);
    for (std::size_t n : nodes) EXPECT_LT(n, 8u);
  }
}

TEST(SimClusterTest, ReplicationClampedToClusterSize) {
  const Fixture f;
  ClusterConfig config = NoiseFree(2);
  config.replication = 5;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), config);
  const auto placement = cluster.PlaceReplica(f.sketch);
  for (const auto& nodes : placement) EXPECT_EQ(nodes.size(), 2u);
}

TEST(SimClusterTest, MakespanBoundsAndWorkConservation) {
  const Fixture f;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), NoiseFree(4));
  const auto placement = cluster.PlaceReplica(f.sketch);
  const auto job = cluster.RunQuery(f.sketch, placement, f.universe);
  ASSERT_TRUE(job.completed);
  EXPECT_EQ(job.tasks, f.sketch.index.NumPartitions());
  EXPECT_EQ(job.reexecuted_tasks, 0u);
  // Makespan between total/slots and total.
  const std::size_t total_slots = 4 * 2;
  EXPECT_GE(job.makespan_ms,
            job.total_task_ms / static_cast<double>(total_slots) - 1e-6);
  EXPECT_LE(job.makespan_ms, job.total_task_ms + 1e-6);
  // Noise-free, all-local total equals the environment's Eq. 7 sum.
  double expected = 0;
  for (std::size_t p = 0; p < f.sketch.index.NumPartitions(); ++p)
    expected += EnvironmentModel::LocalHadoop().PartitionScanMs(
        f.sketch.config.encoding, f.sketch.counts[p]);
  if (job.local_tasks == job.tasks)
    EXPECT_NEAR(job.total_task_ms, expected, 1e-6);
}

TEST(SimClusterTest, MoreNodesShrinkMakespan) {
  const Fixture f;
  double previous = std::numeric_limits<double>::infinity();
  for (const std::size_t nodes : {1u, 2u, 4u, 8u}) {
    SimCluster cluster(EnvironmentModel::LocalHadoop(), NoiseFree(nodes));
    const auto placement = cluster.PlaceReplica(f.sketch);
    const auto job = cluster.RunQuery(f.sketch, placement, f.universe);
    EXPECT_LE(job.makespan_ms, previous + 1e-6) << nodes << " nodes";
    previous = job.makespan_ms;
  }
}

TEST(SimClusterTest, LocalityIsHighWithReplication) {
  const Fixture f;
  ClusterConfig config = NoiseFree(8);
  config.replication = 3;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), config);
  const auto placement = cluster.PlaceReplica(f.sketch);
  const auto job = cluster.RunQuery(f.sketch, placement, f.universe);
  EXPECT_GT(static_cast<double>(job.local_tasks) /
                static_cast<double>(job.tasks),
            0.8);
}

TEST(SimClusterTest, NodeFailureReexecutesInFlightTasks) {
  const Fixture f;
  ClusterConfig config = NoiseFree(4);
  config.replication = 2;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), config);
  const auto placement = cluster.PlaceReplica(f.sketch);
  const auto healthy = cluster.RunQuery(f.sketch, placement, f.universe);

  // Fail node 0 early in the job: some tasks must re-execute and the
  // makespan must not improve.
  const FailureInjection failure{0, healthy.makespan_ms * 0.2};
  SimCluster cluster2(EnvironmentModel::LocalHadoop(), config);
  const auto placement2 = cluster2.PlaceReplica(f.sketch);
  const auto degraded =
      cluster2.RunQuery(f.sketch, placement2, f.universe, failure);
  ASSERT_TRUE(degraded.completed);
  EXPECT_GT(degraded.reexecuted_tasks, 0u);
  EXPECT_GE(degraded.makespan_ms, healthy.makespan_ms * 0.99);
}

TEST(SimClusterTest, SoleCopyLossFailsJobWithoutReplication) {
  const Fixture f;
  ClusterConfig config = NoiseFree(4);
  config.replication = 1;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), config);
  const auto placement = cluster.PlaceReplica(f.sketch);
  // Fail a node that certainly hosts in-flight work right away.
  bool any_failed = false;
  for (std::size_t node = 0; node < 4; ++node) {
    const auto job = cluster.RunQuery(f.sketch, placement, f.universe,
                                      FailureInjection{node, 1.0});
    if (!job.completed) any_failed = true;
  }
  EXPECT_TRUE(any_failed);
}

TEST(SimClusterTest, ReplicatedDataSurvivesAnySingleFailure) {
  const Fixture f;
  ClusterConfig config = NoiseFree(6);
  config.replication = 3;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), config);
  const auto placement = cluster.PlaceReplica(f.sketch);
  for (std::size_t node = 0; node < 6; ++node) {
    const auto job = cluster.RunQuery(f.sketch, placement, f.universe,
                                      FailureInjection{node, 1.0});
    EXPECT_TRUE(job.completed) << "node " << node;
  }
}

TEST(SimClusterTest, SpeculationMitigatesStragglersUnderHeavyNoise) {
  const Fixture f;
  // Heavy noise creates stragglers; speculation should cut the average
  // makespan and never lose more than noise-level variance.
  ClusterConfig base = NoiseFree(8);
  base.noise_fraction = 0.4;
  double plain_total = 0, spec_total = 0;
  std::size_t backups = 0, wins = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ClusterConfig plain_config = base;
    plain_config.seed = seed;
    SimCluster plain(EnvironmentModel::LocalHadoop(), plain_config);
    const auto placement = plain.PlaceReplica(f.sketch);
    plain_total +=
        plain.RunQuery(f.sketch, placement, f.universe).makespan_ms;

    ClusterConfig spec_config = plain_config;
    spec_config.speculative_execution = true;
    SimCluster speculative(EnvironmentModel::LocalHadoop(), spec_config);
    const auto placement2 = speculative.PlaceReplica(f.sketch);
    const auto job =
        speculative.RunQuery(f.sketch, placement2, f.universe);
    spec_total += job.makespan_ms;
    backups += job.speculative_backups;
    wins += job.speculative_wins;
    EXPECT_TRUE(job.completed);
  }
  EXPECT_GT(backups, 0u);
  EXPECT_GT(wins, 0u);
  EXPECT_LT(spec_total, plain_total * 1.02);
}

TEST(SimClusterTest, SpeculationRescuesTasksOnDegradedNode) {
  const Fixture f;
  ClusterConfig config = NoiseFree(8);
  config.noise_fraction = 0.05;
  config.slow_node = 2;
  // Degraded enough that its tasks outlive the job's final wave — milder
  // slowdowns are absorbed by the greedy scheduler routing around the
  // node's busy slots.
  config.slow_factor = 10.0;

  SimCluster plain(EnvironmentModel::LocalHadoop(), config);
  const auto p1 = plain.PlaceReplica(f.sketch);
  const auto slow_job = plain.RunQuery(f.sketch, p1, f.universe);

  config.speculative_execution = true;
  SimCluster spec(EnvironmentModel::LocalHadoop(), config);
  const auto p2 = spec.PlaceReplica(f.sketch);
  const auto rescued = spec.RunQuery(f.sketch, p2, f.universe);

  EXPECT_GT(rescued.speculative_backups, 0u);
  EXPECT_GT(rescued.speculative_wins, 0u);
  EXPECT_LT(rescued.makespan_ms, slow_job.makespan_ms);
}

TEST(SimClusterTest, SlowFactorValidated) {
  ClusterConfig config = NoiseFree(4);
  config.slow_factor = 0.5;
  EXPECT_THROW(SimCluster(EnvironmentModel::LocalHadoop(), config),
               InvalidArgument);
}

TEST(SimClusterTest, SpeculationIsNoopWithoutNoise) {
  const Fixture f;
  ClusterConfig config = NoiseFree(4);
  config.speculative_execution = true;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), config);
  const auto placement = cluster.PlaceReplica(f.sketch);
  const auto job = cluster.RunQuery(f.sketch, placement, f.universe);
  // No task overruns its expected duration, so nothing speculates.
  EXPECT_EQ(job.speculative_backups, 0u);
}

TEST(SimClusterTest, EmptyQueryIsFree) {
  const Fixture f;
  SimCluster cluster(EnvironmentModel::LocalHadoop(), NoiseFree(4));
  const auto placement = cluster.PlaceReplica(f.sketch);
  const auto job = cluster.RunQuery(f.sketch, placement,
                                    STRange::FromBounds(0, 1, 0, 1, 0, 1));
  EXPECT_EQ(job.tasks, 0u);
  EXPECT_EQ(job.makespan_ms, 0.0);
}

}  // namespace
}  // namespace blot
