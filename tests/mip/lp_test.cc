#include "mip/lp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace blot {
namespace {

TEST(LpTest, TwoVariableTextbookProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of negative)
  LpProblem lp(2);
  lp.SetObjective(0, -3);
  lp.SetObjective(1, -5);
  lp.AddConstraint({{{0, 1.0}}, Relation::kLessEqual, 4});
  lp.AddConstraint({{{1, 2.0}}, Relation::kLessEqual, 12});
  lp.AddConstraint({{{0, 3.0}, {1, 2.0}}, Relation::kLessEqual, 18});
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36, 1e-9);
  EXPECT_NEAR(s.values[0], 2, 1e-9);
  EXPECT_NEAR(s.values[1], 6, 1e-9);
}

TEST(LpTest, EqualityConstraintsRequirePhaseOne) {
  // min x + 2y s.t. x + y == 10, x - y == 2  -> x=6, y=4.
  LpProblem lp(2);
  lp.SetObjective(0, 1);
  lp.SetObjective(1, 2);
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, Relation::kEqual, 10});
  lp.AddConstraint({{{0, 1.0}, {1, -1.0}}, Relation::kEqual, 2});
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 6, 1e-9);
  EXPECT_NEAR(s.values[1], 4, 1e-9);
  EXPECT_NEAR(s.objective, 14, 1e-9);
}

TEST(LpTest, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> (4, 0)? y can be 0: x >= 4
  // satisfies both; objective 8.
  LpProblem lp(2);
  lp.SetObjective(0, 2);
  lp.SetObjective(1, 3);
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 4});
  lp.AddConstraint({{{0, 1.0}}, Relation::kGreaterEqual, 1});
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8, 1e-9);
  EXPECT_NEAR(s.values[0], 4, 1e-9);
  EXPECT_NEAR(s.values[1], 0, 1e-9);
}

TEST(LpTest, DetectsInfeasibility) {
  LpProblem lp(1);
  lp.SetObjective(0, 1);
  lp.AddConstraint({{{0, 1.0}}, Relation::kLessEqual, 1});
  lp.AddConstraint({{{0, 1.0}}, Relation::kGreaterEqual, 2});
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(LpTest, DetectsUnboundedness) {
  LpProblem lp(2);
  lp.SetObjective(0, -1);  // minimize -x with x unbounded above
  lp.AddConstraint({{{1, 1.0}}, Relation::kLessEqual, 5});
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(LpTest, NoConstraintsOptimalAtZero) {
  LpProblem lp(3);
  lp.SetObjective(0, 1);
  lp.SetObjective(1, 0);
  lp.SetObjective(2, 2);
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.objective, 0.0);
}

TEST(LpTest, NoConstraintsNegativeCostUnbounded) {
  LpProblem lp(1);
  lp.SetObjective(0, -1);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(LpTest, NegativeRhsNormalization) {
  // x - y <= -2 with min x + y -> x=0, y=2.
  LpProblem lp(2);
  lp.SetObjective(0, 1);
  lp.SetObjective(1, 1);
  lp.AddConstraint({{{0, 1.0}, {1, -1.0}}, Relation::kLessEqual, -2});
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2, 1e-9);
  EXPECT_NEAR(s.values[1], 2, 1e-9);
}

TEST(LpTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpProblem lp(2);
  lp.SetObjective(0, -1);
  lp.SetObjective(1, -1);
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 1});
  lp.AddConstraint({{{0, 2.0}, {1, 2.0}}, Relation::kLessEqual, 2});
  lp.AddConstraint({{{0, 1.0}}, Relation::kLessEqual, 1});
  lp.AddConstraint({{{1, 1.0}}, Relation::kLessEqual, 1});
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1, 1e-9);
}

TEST(LpTest, RedundantEqualityRows) {
  // Second equality is a copy of the first: dependent rows leave an
  // artificial basic at zero, which must not corrupt phase 2.
  LpProblem lp(2);
  lp.SetObjective(0, 1);
  lp.SetObjective(1, 3);
  lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, Relation::kEqual, 5});
  lp.AddConstraint({{{0, 2.0}, {1, 2.0}}, Relation::kEqual, 10});
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5, 1e-9);
  EXPECT_NEAR(s.values[0], 5, 1e-9);
}

TEST(LpTest, AssignmentPolytopeIsIntegral) {
  // 3x3 assignment problem: LP relaxation has integral optimum.
  // Costs: pick the permutation (0->1, 1->2, 2->0) with cost 1+2+3=6.
  const double costs[3][3] = {{9, 1, 9}, {9, 9, 2}, {3, 9, 9}};
  LpProblem lp(9);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      lp.SetObjective(static_cast<std::size_t>(3 * i + j), costs[i][j]);
  for (int i = 0; i < 3; ++i) {
    LpConstraint row{{}, Relation::kEqual, 1};
    LpConstraint col{{}, Relation::kEqual, 1};
    for (int j = 0; j < 3; ++j) {
      row.terms.emplace_back(static_cast<std::size_t>(3 * i + j), 1.0);
      col.terms.emplace_back(static_cast<std::size_t>(3 * j + i), 1.0);
    }
    lp.AddConstraint(row);
    lp.AddConstraint(col);
  }
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6, 1e-9);
  for (double v : s.values)
    EXPECT_LT(std::min(std::abs(v), std::abs(v - 1)), 1e-9);
}

TEST(LpTest, ReturnedSolutionsSatisfyTheirConstraints) {
  // Certification property: on random LPs of mixed relation types, any
  // "optimal" answer must actually be primal-feasible (tolerance 1e-6)
  // and its objective must match the value claimed.
  Rng rng(123);
  int optimal_count = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.NextUint64(5);
    const std::size_t m = 1 + rng.NextUint64(6);
    LpProblem lp(n);
    for (std::size_t j = 0; j < n; ++j)
      lp.SetObjective(j, rng.NextDouble(-2, 3));
    std::vector<LpConstraint> constraints;
    // A bounding box keeps problems mostly bounded.
    for (std::size_t j = 0; j < n; ++j) {
      lp.AddConstraint({{{j, 1.0}}, Relation::kLessEqual,
                        rng.NextDouble(1, 10)});
    }
    for (std::size_t c = 0; c < m; ++c) {
      LpConstraint constraint;
      for (std::size_t j = 0; j < n; ++j)
        if (rng.NextBool(0.7))
          constraint.terms.emplace_back(j, rng.NextDouble(-1, 1));
      if (constraint.terms.empty())
        constraint.terms.emplace_back(0, 1.0);
      const std::uint64_t kind = rng.NextUint64(3);
      constraint.relation = kind == 0   ? Relation::kLessEqual
                            : kind == 1 ? Relation::kGreaterEqual
                                        : Relation::kEqual;
      constraint.rhs = rng.NextDouble(-3, 5);
      lp.AddConstraint(constraint);
    }
    const LpSolution s = SolveLp(lp);
    if (s.status != LpStatus::kOptimal) continue;
    ++optimal_count;
    ASSERT_EQ(s.values.size(), n);
    double objective = 0;
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_GE(s.values[j], -1e-7) << "trial " << trial;
      objective += lp.objective(j) * s.values[j];
    }
    EXPECT_NEAR(objective, s.objective, 1e-6) << "trial " << trial;
    for (const LpConstraint& constraint : lp.constraints()) {
      double lhs = 0;
      for (const auto& [j, coeff] : constraint.terms)
        lhs += coeff * s.values[j];
      switch (constraint.relation) {
        case Relation::kLessEqual:
          EXPECT_LE(lhs, constraint.rhs + 1e-6) << "trial " << trial;
          break;
        case Relation::kGreaterEqual:
          EXPECT_GE(lhs, constraint.rhs - 1e-6) << "trial " << trial;
          break;
        case Relation::kEqual:
          EXPECT_NEAR(lhs, constraint.rhs, 1e-6) << "trial " << trial;
          break;
      }
    }
  }
  // Random instances are mostly feasible thanks to the bounding box.
  EXPECT_GT(optimal_count, 20);
}

TEST(LpTest, RandomProblemsMatchVertexEnumeration) {
  // 2-variable random LPs cross-checked against brute-force enumeration of
  // constraint-intersection vertices.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const int num_constraints = 3 + static_cast<int>(rng.NextUint64(4));
    std::vector<std::array<double, 3>> rows;  // a, b, rhs: ax + by <= rhs
    LpProblem lp(2);
    const double cx = rng.NextDouble(0.1, 2.0);
    const double cy = rng.NextDouble(0.1, 2.0);
    lp.SetObjective(0, -cx);  // maximize cx*x + cy*y over a bounded region
    lp.SetObjective(1, -cy);
    for (int i = 0; i < num_constraints; ++i) {
      const double a = rng.NextDouble(0.1, 1.0);
      const double b = rng.NextDouble(0.1, 1.0);
      const double rhs = rng.NextDouble(1.0, 10.0);
      rows.push_back({a, b, rhs});
      lp.AddConstraint({{{0, a}, {1, b}}, Relation::kLessEqual, rhs});
    }
    const LpSolution s = SolveLp(lp);
    ASSERT_EQ(s.status, LpStatus::kOptimal);

    // Enumerate candidate vertices: axis intersections and pairwise
    // constraint intersections, keep feasible ones.
    std::vector<std::pair<double, double>> candidates = {{0, 0}};
    for (const auto& r : rows) {
      candidates.emplace_back(r[2] / r[0], 0.0);
      candidates.emplace_back(0.0, r[2] / r[1]);
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = i + 1; j < rows.size(); ++j) {
        const double det = rows[i][0] * rows[j][1] - rows[j][0] * rows[i][1];
        if (std::abs(det) < 1e-12) continue;
        const double x =
            (rows[i][2] * rows[j][1] - rows[j][2] * rows[i][1]) / det;
        const double y =
            (rows[i][0] * rows[j][2] - rows[j][0] * rows[i][2]) / det;
        candidates.emplace_back(x, y);
      }
    }
    double best = 0;
    for (const auto& [x, y] : candidates) {
      if (x < -1e-9 || y < -1e-9) continue;
      bool feasible = true;
      for (const auto& r : rows)
        if (r[0] * x + r[1] * y > r[2] + 1e-9) feasible = false;
      if (feasible) best = std::max(best, cx * x + cy * y);
    }
    EXPECT_NEAR(-s.objective, best, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace blot
