#include "mip/mip.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace blot {
namespace {

// Adds the x <= 1 bound every relaxed binary needs.
void BoundBinary(LpProblem& lp, std::size_t variable) {
  lp.AddConstraint({{{variable, 1.0}}, Relation::kLessEqual, 1.0});
}

// Brute force over all 2^n assignments of the binaries (other variables
// must not exist for this helper).
double BruteForceBinaryMin(
    const std::vector<double>& costs,
    const std::vector<std::vector<double>>& le_rows,
    const std::vector<double>& le_rhs) {
  const std::size_t n = costs.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    bool feasible = true;
    for (std::size_t r = 0; r < le_rows.size() && feasible; ++r) {
      double lhs = 0;
      for (std::size_t j = 0; j < n; ++j)
        if (mask & (std::uint64_t{1} << j)) lhs += le_rows[r][j];
      if (lhs > le_rhs[r] + 1e-9) feasible = false;
    }
    if (!feasible) continue;
    double obj = 0;
    for (std::size_t j = 0; j < n; ++j)
      if (mask & (std::uint64_t{1} << j)) obj += costs[j];
    best = std::min(best, obj);
  }
  return best;
}

TEST(MipTest, SmallKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  ->  a + c (17) vs b + c (20).
  MipProblem mip{LpProblem(3), {0, 1, 2}};
  mip.lp.SetObjective(0, -10);
  mip.lp.SetObjective(1, -13);
  mip.lp.SetObjective(2, -7);
  mip.lp.AddConstraint(
      {{{0, 3.0}, {1, 4.0}, {2, 2.0}}, Relation::kLessEqual, 6});
  for (std::size_t v : {0, 1, 2}) BoundBinary(mip.lp, v);
  const MipSolution s = SolveMip(mip);
  ASSERT_EQ(s.status, MipStatus::kOptimal);
  EXPECT_NEAR(s.objective, -20, 1e-6);
  EXPECT_NEAR(s.values[0], 0, 1e-6);
  EXPECT_NEAR(s.values[1], 1, 1e-6);
  EXPECT_NEAR(s.values[2], 1, 1e-6);
}

TEST(MipTest, InfeasibleBinaryProblem) {
  // x0 + x1 >= 3 is unsatisfiable for two binaries.
  MipProblem mip{LpProblem(2), {0, 1}};
  mip.lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 3});
  for (std::size_t v : {0, 1}) BoundBinary(mip.lp, v);
  EXPECT_EQ(SolveMip(mip).status, MipStatus::kInfeasible);
}

TEST(MipTest, FractionalLpForcedToInteger) {
  // LP optimum is x0 = x1 = 0.5; MIP must pick exactly one.
  MipProblem mip{LpProblem(2), {0, 1}};
  mip.lp.SetObjective(0, 1.0);
  mip.lp.SetObjective(1, 1.1);
  mip.lp.AddConstraint({{{0, 2.0}, {1, 2.0}}, Relation::kGreaterEqual, 2});
  for (std::size_t v : {0, 1}) BoundBinary(mip.lp, v);
  const MipSolution s = SolveMip(mip);
  ASSERT_EQ(s.status, MipStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
  EXPECT_NEAR(s.values[0], 1, 1e-6);
  EXPECT_NEAR(s.values[1], 0, 1e-6);
}

TEST(MipTest, MixedIntegerAndContinuous) {
  // min -x0 - 10y  s.t. y <= 0.7 x0 (binary x0), y <= 0.7.
  // Opening x0 allows y = 0.7: objective -8.
  MipProblem mip{LpProblem(2), {0}};
  mip.lp.SetObjective(0, -1);
  mip.lp.SetObjective(1, -10);
  mip.lp.AddConstraint({{{1, 1.0}, {0, -0.7}}, Relation::kLessEqual, 0});
  mip.lp.AddConstraint({{{1, 1.0}}, Relation::kLessEqual, 0.7});
  BoundBinary(mip.lp, 0);
  const MipSolution s = SolveMip(mip);
  ASSERT_EQ(s.status, MipStatus::kOptimal);
  EXPECT_NEAR(s.objective, -8, 1e-6);
  EXPECT_NEAR(s.values[0], 1, 1e-6);
  EXPECT_NEAR(s.values[1], 0.7, 1e-6);
}

TEST(MipTest, SeededIncumbentThatIsOptimalIsConfirmed) {
  // Optimal objective is -20 (from SmallKnapsack); seeding it means the
  // solver proves optimality without producing its own assignment.
  MipProblem mip{LpProblem(3), {0, 1, 2}};
  mip.lp.SetObjective(0, -10);
  mip.lp.SetObjective(1, -13);
  mip.lp.SetObjective(2, -7);
  mip.lp.AddConstraint(
      {{{0, 3.0}, {1, 4.0}, {2, 2.0}}, Relation::kLessEqual, 6});
  for (std::size_t v : {0, 1, 2}) BoundBinary(mip.lp, v);
  const MipSolution s = SolveMip(mip, {}, -20.0);
  ASSERT_EQ(s.status, MipStatus::kOptimal);
  EXPECT_NEAR(s.objective, -20, 1e-6);
}

TEST(MipTest, SeededIncumbentThatIsLooseIsBeaten) {
  MipProblem mip{LpProblem(3), {0, 1, 2}};
  mip.lp.SetObjective(0, -10);
  mip.lp.SetObjective(1, -13);
  mip.lp.SetObjective(2, -7);
  mip.lp.AddConstraint(
      {{{0, 3.0}, {1, 4.0}, {2, 2.0}}, Relation::kLessEqual, 6});
  for (std::size_t v : {0, 1, 2}) BoundBinary(mip.lp, v);
  const MipSolution s = SolveMip(mip, {}, -17.0);
  ASSERT_EQ(s.status, MipStatus::kOptimal);
  EXPECT_NEAR(s.objective, -20, 1e-6);
  ASSERT_FALSE(s.values.empty());
}

TEST(MipTest, OddCycleCoverNeedsBranching) {
  // Vertex cover of a triangle: LP relaxation is (1/2, 1/2, 1/2) with
  // objective 1.5; the integer optimum needs two vertices.
  MipProblem mip{LpProblem(3), {0, 1, 2}};
  for (std::size_t v : {0, 1, 2}) {
    mip.lp.SetObjective(v, 1.0);
    BoundBinary(mip.lp, v);
  }
  mip.lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 1});
  mip.lp.AddConstraint({{{1, 1.0}, {2, 1.0}}, Relation::kGreaterEqual, 1});
  mip.lp.AddConstraint({{{0, 1.0}, {2, 1.0}}, Relation::kGreaterEqual, 1});
  const MipSolution s = SolveMip(mip);
  ASSERT_EQ(s.status, MipStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_GT(s.nodes_explored, 1u);
}

TEST(MipTest, NodeLimitReportsHonestly) {
  // Same triangle cover, but the node budget stops at the (fractional)
  // root relaxation.
  MipProblem mip{LpProblem(3), {0, 1, 2}};
  for (std::size_t v : {0, 1, 2}) {
    mip.lp.SetObjective(v, 1.0);
    BoundBinary(mip.lp, v);
  }
  mip.lp.AddConstraint({{{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 1});
  mip.lp.AddConstraint({{{1, 1.0}, {2, 1.0}}, Relation::kGreaterEqual, 1});
  mip.lp.AddConstraint({{{0, 1.0}, {2, 1.0}}, Relation::kGreaterEqual, 1});
  MipOptions options;
  options.max_nodes = 1;
  const MipSolution s = SolveMip(mip, options);
  EXPECT_TRUE(s.status == MipStatus::kNodeLimit ||
              s.status == MipStatus::kNoSolution);
}

TEST(MipTest, RandomKnapsacksMatchBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.NextUint64(6);  // 4..9 binaries
    std::vector<double> costs(n);
    std::vector<double> weights(n);
    for (std::size_t j = 0; j < n; ++j) {
      costs[j] = -rng.NextDouble(1, 20);  // maximize value
      weights[j] = rng.NextDouble(1, 10);
    }
    const double capacity = rng.NextDouble(5, 25);

    MipProblem mip{LpProblem(n), {}};
    LpConstraint knapsack{{}, Relation::kLessEqual, capacity};
    for (std::size_t j = 0; j < n; ++j) {
      mip.binary_variables.push_back(j);
      mip.lp.SetObjective(j, costs[j]);
      knapsack.terms.emplace_back(j, weights[j]);
      BoundBinary(mip.lp, j);
    }
    mip.lp.AddConstraint(knapsack);

    const MipSolution s = SolveMip(mip);
    ASSERT_EQ(s.status, MipStatus::kOptimal) << "trial " << trial;
    const double expected =
        BruteForceBinaryMin(costs, {weights}, {capacity});
    EXPECT_NEAR(s.objective, expected, 1e-6) << "trial " << trial;
  }
}

TEST(MipTest, RandomCoveringProblemsMatchBruteForce) {
  // min-cost cover: each of several elements must be covered by at least
  // one chosen set (>= constraints exercise phase-1 paths inside B&B).
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t num_sets = 4 + rng.NextUint64(4);
    const std::size_t num_elements = 3 + rng.NextUint64(3);
    std::vector<double> costs(num_sets);
    std::vector<std::vector<double>> covers(
        num_elements, std::vector<double>(num_sets, 0.0));
    for (std::size_t j = 0; j < num_sets; ++j)
      costs[j] = rng.NextDouble(1, 10);
    for (std::size_t e = 0; e < num_elements; ++e) {
      // Each element coverable by 1-3 random sets; ensure at least one.
      const std::size_t cover_count = 1 + rng.NextUint64(3);
      for (std::size_t k = 0; k < cover_count; ++k)
        covers[e][rng.NextUint64(num_sets)] = 1.0;
    }

    MipProblem mip{LpProblem(num_sets), {}};
    for (std::size_t j = 0; j < num_sets; ++j) {
      mip.binary_variables.push_back(j);
      mip.lp.SetObjective(j, costs[j]);
      BoundBinary(mip.lp, j);
    }
    for (std::size_t e = 0; e < num_elements; ++e) {
      LpConstraint c{{}, Relation::kGreaterEqual, 1.0};
      for (std::size_t j = 0; j < num_sets; ++j)
        if (covers[e][j] > 0) c.terms.emplace_back(j, 1.0);
      mip.lp.AddConstraint(c);
    }

    // Brute force: negate cover rows to express >= as <=.
    std::vector<std::vector<double>> le_rows;
    std::vector<double> le_rhs;
    for (std::size_t e = 0; e < num_elements; ++e) {
      std::vector<double> row(num_sets);
      for (std::size_t j = 0; j < num_sets; ++j) row[j] = -covers[e][j];
      le_rows.push_back(row);
      le_rhs.push_back(-1.0);
    }
    const double expected = BruteForceBinaryMin(costs, le_rows, le_rhs);

    const MipSolution s = SolveMip(mip);
    ASSERT_EQ(s.status, MipStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(s.objective, expected, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace blot
