#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "util/json.h"

namespace blot::obs {
namespace {

using util::JsonValue;

std::vector<JsonValue> ParseLines(const std::string& jsonl) {
  std::vector<JsonValue> lines;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(JsonValue::Parse(line));
  return lines;
}

const JsonValue* FindEntry(const JsonValue& array, const std::string& name) {
  for (const JsonValue& entry : array.AsArray())
    if (entry.At("name").AsString() == name) return &entry;
  return nullptr;
}

TEST(SnapshotterTest, SampleNowFillsRingInOrder) {
  MetricsRegistry registry;
  MetricsSnapshotter snap({}, &registry);
  EXPECT_EQ(snap.sample_count(), 0u);
  EXPECT_EQ(snap.ToJsonl(), "");

  registry.GetCounter("c").Increment(1);
  snap.SampleNow();
  registry.GetCounter("c").Increment(2);
  snap.SampleNow();
  const std::vector<TimedSnapshot> samples = snap.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_LT(samples[0].seq, samples[1].seq);
  EXPECT_LE(samples[0].mono_ns, samples[1].mono_ns);
  EXPECT_EQ(samples[0].metrics.FindCounter("c")->value, 1u);
  EXPECT_EQ(samples[1].metrics.FindCounter("c")->value, 3u);
  EXPECT_EQ(snap.samples_taken(), 2u);
}

TEST(SnapshotterTest, RingEvictsOldestBeyondCapacity) {
  MetricsRegistry registry;
  SnapshotterOptions options;
  options.capacity = 2;
  MetricsSnapshotter snap(options, &registry);
  for (int i = 0; i < 3; ++i) {
    registry.GetCounter("c").Increment();
    snap.SampleNow();
  }
  EXPECT_EQ(snap.samples_taken(), 3u);
  const std::vector<TimedSnapshot> samples = snap.Samples();
  ASSERT_EQ(samples.size(), 2u);
  // Oldest sample (counter == 1) was evicted.
  EXPECT_EQ(samples[0].metrics.FindCounter("c")->value, 2u);
  // After eviction the first retained line becomes the new base.
  const std::vector<JsonValue> lines = ParseLines(snap.ToJsonl());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].At("base").AsBool());
  EXPECT_FALSE(lines[1].At("base").AsBool());
  EXPECT_EQ(FindEntry(lines[0].At("counters"), "c")->At("delta").AsUint64(),
            2u);
}

TEST(SnapshotterTest, JsonlDeltaEncodingReconstructsExactly) {
  MetricsRegistry registry;
  Counter& busy = registry.GetCounter("busy.total");
  Counter& idle = registry.GetCounter("idle.total");
  Gauge& depth = registry.GetGauge("depth");
  Histogram& lat = registry.GetHistogram("lat_ms", {}, {1.0, 10.0});

  MetricsSnapshotter snap({}, &registry);
  busy.Increment(5);
  idle.Increment(1);
  depth.Set(2.5);
  lat.Observe(0.5);
  snap.SampleNow();
  busy.Increment(3);  // idle unchanged
  depth.Set(1.25);
  lat.Observe(5.0);
  lat.Observe(99.0);  // overflow
  snap.SampleNow();

  const std::vector<JsonValue> lines = ParseLines(snap.ToJsonl());
  ASSERT_EQ(lines.size(), 2u);
  for (const JsonValue& line : lines)
    EXPECT_EQ(line.At("schema").AsString(), "blot.snapshot.v1");

  // Base line: everything listed, deltas from zero.
  EXPECT_EQ(FindEntry(lines[0].At("counters"), "busy.total")
                ->At("delta").AsUint64(),
            5u);
  EXPECT_EQ(FindEntry(lines[0].At("counters"), "idle.total")
                ->At("delta").AsUint64(),
            1u);
  const JsonValue* lat0 = FindEntry(lines[0].At("histograms"), "lat_ms");
  ASSERT_NE(lat0, nullptr);
  ASSERT_NE(lat0->Find("bounds"), nullptr);  // first appearance
  EXPECT_EQ(lat0->At("dcount").AsUint64(), 1u);

  // Second line: unchanged counter omitted, changed one carries its
  // delta; gauges stay absolute; histogram bounds do not repeat.
  EXPECT_EQ(FindEntry(lines[1].At("counters"), "idle.total"), nullptr);
  EXPECT_EQ(FindEntry(lines[1].At("counters"), "busy.total")
                ->At("delta").AsUint64(),
            3u);
  EXPECT_DOUBLE_EQ(
      FindEntry(lines[0].At("gauges"), "depth")->At("value").AsDouble(),
      2.5);
  EXPECT_DOUBLE_EQ(
      FindEntry(lines[1].At("gauges"), "depth")->At("value").AsDouble(),
      1.25);
  const JsonValue* lat1 = FindEntry(lines[1].At("histograms"), "lat_ms");
  ASSERT_NE(lat1, nullptr);
  EXPECT_EQ(lat1->Find("bounds"), nullptr);
  EXPECT_EQ(lat1->At("dcount").AsUint64(), 2u);

  // Reconstruction: cumulative sums must land exactly on the registry.
  std::uint64_t busy_total = 0;
  double lat_sum = 0.0;
  std::vector<std::uint64_t> lat_counts(3, 0);
  for (const JsonValue& line : lines) {
    if (const JsonValue* c = FindEntry(line.At("counters"), "busy.total"))
      busy_total += c->At("delta").AsUint64();
    if (const JsonValue* h = FindEntry(line.At("histograms"), "lat_ms")) {
      lat_sum += h->At("dsum").AsDouble();
      const auto& dcounts = h->At("dcounts").AsArray();
      ASSERT_EQ(dcounts.size(), lat_counts.size());
      for (std::size_t i = 0; i < dcounts.size(); ++i)
        lat_counts[i] += dcounts[i].AsUint64();
    }
  }
  EXPECT_EQ(busy_total, busy.value());
  EXPECT_DOUBLE_EQ(lat_sum, lat.sum());
  EXPECT_EQ(lat_counts, lat.counts());
}

TEST(SnapshotterTest, BackgroundThreadSamplesUntilStopped) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment();
  SnapshotterOptions options;
  options.interval = std::chrono::milliseconds(2);
  MetricsSnapshotter snap(options, &registry);
  EXPECT_FALSE(snap.running());
  snap.Start();
  snap.Start();  // idempotent
  EXPECT_TRUE(snap.running());
  while (snap.samples_taken() < 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  snap.Stop();
  EXPECT_FALSE(snap.running());
  const std::uint64_t taken = snap.samples_taken();
  EXPECT_GE(taken, 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(snap.samples_taken(), taken);  // really stopped
}

TEST(SnapshotterTest, WriteJsonlFileWritesAndEmitsFlushEvent) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment();
  MetricsSnapshotter snap({}, &registry);
  snap.SampleNow();

  EventLog& log = EventLog::Global();
  log.ResetForTest();
  log.set_enabled(true);
  const std::string path =
      std::string(::testing::TempDir()) + "/snapshot_test_out.jsonl";
  std::remove(path.c_str());
  snap.WriteJsonlFile(path);
  log.set_enabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), snap.ToJsonl());

  bool saw_flush = false;
  for (const Event& e : log.Recent())
    if (e.category == "snapshot.flush") saw_flush = true;
  EXPECT_TRUE(saw_flush);
  log.ResetForTest();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace blot::obs
