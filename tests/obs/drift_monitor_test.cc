#include "obs/drift_monitor.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace blot::obs {
namespace {

QueryProfile ProfileWith(std::size_t replica, double estimated,
                         double measured) {
  QueryProfile p;
  p.replica_index = replica;
  p.estimated_cost_ms = estimated;
  p.measured_cost_ms = measured;
  return p;
}

std::size_t CountCategory(const EventLog& log, std::string_view category) {
  std::size_t n = 0;
  for (const Event& e : log.Recent(256))
    if (e.category == category) ++n;
  return n;
}

TEST(CostDriftMonitorTest, RejectsDegenerateOptions) {
  EXPECT_THROW(CostDriftMonitor({.window = 0}), InvalidArgument);
  EXPECT_THROW(CostDriftMonitor({.min_samples = 0}), InvalidArgument);
  EXPECT_THROW(CostDriftMonitor({.alert_error_pct = 0.0}), InvalidArgument);
}

TEST(CostDriftMonitorTest, IgnoresUnmeasuredProfiles) {
  CostDriftMonitor monitor;
  monitor.Observe(ProfileWith(0, 1.0, 0.0));  // failed before execution
  EXPECT_EQ(monitor.StatsFor(0).samples, 0u);
  EXPECT_TRUE(monitor.AllStats().empty());
}

TEST(CostDriftMonitorTest, TracksSignedAndAbsoluteErrorPerReplica) {
  CostDriftMonitor monitor;
  // Replica 0: model underestimates by 50% (measured 2x estimate).
  monitor.Observe(ProfileWith(0, 1.0, 2.0));
  // Replica 1: model overestimates by 100% of measured.
  monitor.Observe(ProfileWith(1, 2.0, 1.0));

  const auto r0 = monitor.StatsFor(0);
  EXPECT_EQ(r0.samples, 1u);
  EXPECT_DOUBLE_EQ(r0.mean_abs_error_pct, 50.0);
  EXPECT_DOUBLE_EQ(r0.mean_signed_error_pct, 50.0);
  const auto r1 = monitor.StatsFor(1);
  EXPECT_DOUBLE_EQ(r1.mean_abs_error_pct, 100.0);
  EXPECT_DOUBLE_EQ(r1.mean_signed_error_pct, -100.0);
  EXPECT_DOUBLE_EQ(r1.max_abs_error_pct, 100.0);

  const auto all = monitor.AllStats();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, 0u);  // sorted by replica index
  EXPECT_EQ(all[1].first, 1u);
  EXPECT_EQ(monitor.StatsFor(7).samples, 0u);  // never seen
}

TEST(CostDriftMonitorTest, WindowSlidesAndForgets) {
  CostDriftMonitor monitor({.window = 4, .min_samples = 2,
                            .alert_error_pct = 25.0});
  // Fill the window with perfect predictions, then four bad ones: the
  // good samples must age out entirely.
  for (int i = 0; i < 4; ++i) monitor.Observe(ProfileWith(0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(monitor.StatsFor(0).mean_abs_error_pct, 0.0);
  for (int i = 0; i < 4; ++i) monitor.Observe(ProfileWith(0, 1.0, 2.0));
  const auto stats = monitor.StatsFor(0);
  EXPECT_EQ(stats.samples, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_abs_error_pct, 50.0);
}

TEST(CostDriftMonitorTest, AlertsOnTransitionAndClearsOnRecovery) {
  EventLog& log = EventLog::Global();
  log.ResetForTest();
  log.set_enabled(true);

  CostDriftMonitor monitor({.window = 8, .min_samples = 2,
                            .alert_error_pct = 25.0});
  // Below min_samples: no alert no matter how wrong the model is.
  monitor.Observe(ProfileWith(0, 1.0, 10.0));
  EXPECT_FALSE(monitor.AnyAlerting());
  EXPECT_EQ(CountCategory(log, "cost_drift.alert"), 0u);

  // Second bad sample crosses min_samples and the threshold: exactly one
  // alert fires, and staying bad does not re-fire it.
  monitor.Observe(ProfileWith(0, 1.0, 10.0));
  EXPECT_TRUE(monitor.AnyAlerting());
  EXPECT_TRUE(monitor.StatsFor(0).alerting);
  monitor.Observe(ProfileWith(0, 1.0, 10.0));
  EXPECT_EQ(CountCategory(log, "cost_drift.alert"), 1u);

  // Flood with perfect predictions until the mean drops back under the
  // threshold: one clear event on the way down.
  for (int i = 0; i < 8; ++i) monitor.Observe(ProfileWith(0, 1.0, 1.0));
  EXPECT_FALSE(monitor.AnyAlerting());
  EXPECT_EQ(CountCategory(log, "cost_drift.alert"), 1u);
  EXPECT_EQ(CountCategory(log, "cost_drift.clear"), 1u);

  log.set_enabled(false);
  log.ResetForTest();
}

TEST(CostDriftMonitorTest, UpdatesGaugesWhenRegistryEnabled) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.Reset();
  registry.set_enabled(true);
  CostDriftMonitor monitor({.window = 8, .min_samples = 1,
                            .alert_error_pct = 25.0});
  monitor.Observe(ProfileWith(3, 1.0, 2.0));
  registry.set_enabled(false);

  const MetricsSnapshot snap = registry.Snapshot();
  const Labels labels = {{"replica", "3"}};
  bool found_error = false, found_alerting = false;
  for (const GaugeSnapshot& g : snap.gauges) {
    if (g.name == "cost_drift.error_pct" && g.labels == labels) {
      EXPECT_DOUBLE_EQ(g.value, 50.0);
      found_error = true;
    }
    if (g.name == "cost_drift.alerting" && g.labels == labels) {
      EXPECT_DOUBLE_EQ(g.value, 1.0);
      found_alerting = true;
    }
  }
  EXPECT_TRUE(found_error);
  EXPECT_TRUE(found_alerting);
  registry.Reset();
}

}  // namespace
}  // namespace blot::obs
