#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/error.h"

namespace blot::obs {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({1.0, 10.0, 100.0});
  // Exactly on a bound lands in that bucket, just above spills over.
  h.Observe(1.0);
  h.Observe(1.0000001);
  h.Observe(10.0);
  h.Observe(100.0);
  h.Observe(100.5);  // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(counts[0], 1u);      // <= 1
  EXPECT_EQ(counts[1], 2u);      // (1, 10]
  EXPECT_EQ(counts[2], 1u);      // (10, 100]
  EXPECT_EQ(counts[3], 1u);      // > 100
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.0000001 + 10.0 + 100.0 + 100.5);
}

TEST(HistogramTest, ObservationBelowFirstBoundLandsInFirstBucket) {
  Histogram h({1.0, 2.0});
  h.Observe(-5.0);
  h.Observe(0.0);
  EXPECT_EQ(h.counts()[0], 2u);
}

TEST(HistogramTest, PercentilesInterpolateWithinBucket) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 observations in (10, 20]: percentiles interpolate across that
  // bucket's width.
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  const double p50 = h.Percentile(50);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 20.0);
}

TEST(HistogramTest, PercentileOnEmptyHistogramIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, PercentileInOverflowReturnsLastBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 4; ++i) h.Observe(99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 2.0);
}

TEST(HistogramTest, PercentileWithSingleBucketInterpolatesFromZero) {
  Histogram h({5.0});
  for (int i = 0; i < 4; ++i) h.Observe(2.0);
  // One finite bucket: the covering bucket's lower edge is 0, so the
  // estimate interpolates across [0, 5].
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 2.5);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 5.0);
}

// The free-function estimator is the contract blotmon --summary relies
// on to reproduce registry quantiles from snapshot JSONL: identical
// inputs must give bit-identical outputs.
TEST(HistogramPercentileTest, MatchesHistogramOnSameData) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 3.0, 3.0, 42.0, 500.0}) h.Observe(v);
  const std::vector<double> bounds = h.bounds();
  const std::vector<std::uint64_t> counts = h.counts();
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(HistogramPercentile(bounds, counts, h.count(), p),
                     h.Percentile(p))
        << "p=" << p;
}

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  EXPECT_DOUBLE_EQ(
      HistogramPercentile({1.0, 2.0}, {0, 0, 0}, 0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramPercentile({}, {}, 0, 99.0), 0.0);
}

TEST(HistogramPercentileTest, AllMassInOverflowReportsLastBound) {
  // The overflow bucket has no upper edge, so every percentile that
  // lands in it degrades to the last finite bound.
  for (double p : {1.0, 50.0, 99.0})
    EXPECT_DOUBLE_EQ(
        HistogramPercentile({1.0, 2.0}, {0, 0, 7}, 7, p), 2.0);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const auto& bounds = Histogram::DefaultLatencyBoundsMs();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (std::uint64_t c : h.counts()) EXPECT_EQ(c, 0u);
}

TEST(RegistryTest, GetReturnsSameInstanceForSameKey) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.total");
  a.Increment();
  Counter& b = registry.GetCounter("x.total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
}

TEST(RegistryTest, LabelOrderDoesNotMatterForIdentity) {
  MetricsRegistry registry;
  Counter& a =
      registry.GetCounter("x.total", {{"b", "2"}, {"a", "1"}});
  Counter& b =
      registry.GetCounter("x.total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(RegistryTest, DistinctLabelsAreDistinctMetrics) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.total", {{"k", "1"}});
  Counter& b = registry.GetCounter("x.total", {{"k", "2"}});
  EXPECT_NE(&a, &b);
}

TEST(RegistryTest, HistogramBoundsMismatchThrows) {
  MetricsRegistry registry;
  registry.GetHistogram("h", {}, {1.0, 2.0});
  EXPECT_THROW(registry.GetHistogram("h", {}, {1.0, 3.0}),
               InvalidArgument);
  // Same bounds (or defaulted lookup of an existing name with empty
  // bounds meaning "whatever it was registered with") is fine.
  EXPECT_NO_THROW(registry.GetHistogram("h", {}, {1.0, 2.0}));
}

TEST(RegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  Histogram& h = registry.GetHistogram("h", {}, {1.0});
  c.Increment(7);
  h.Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.Increment();  // handle still valid
  EXPECT_EQ(registry.GetCounter("c").value(), 1u);
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.total").Increment(2);
  registry.GetCounter("a.total").Increment(1);
  registry.GetGauge("g").Set(1.5);
  registry.GetHistogram("h", {}, {1.0}).Observe(0.5);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.total");
  EXPECT_EQ(snap.counters[1].name, "b.total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_NE(snap.FindCounter("a.total"), nullptr);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);
  EXPECT_NE(snap.FindHistogram("h"), nullptr);
}

TEST(RegistryTest, GlobalStartsDisabledAndToggles) {
  // Other tests in this binary must not have enabled it; the global
  // contract is "off until someone opts in".
  MetricsRegistry& global = MetricsRegistry::global();
  const bool was = global.enabled();
  global.set_enabled(true);
  EXPECT_TRUE(global.enabled());
  global.set_enabled(was);
}

TEST(ScopedTimerTest, NullHistogramIsANoOp) {
  ScopedTimerMs timer(nullptr);
  EXPECT_DOUBLE_EQ(timer.ElapsedMs(), 0.0);
}

TEST(ScopedTimerTest, RecordsElapsedIntoHistogram) {
  Histogram h({1e6});
  {
    ScopedTimerMs timer(&h);
    EXPECT_GE(timer.ElapsedMs(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(PrometheusTest, EmitsTypeOncePerFamilyAndCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("req.total", {{"replica", "a"}}).Increment(3);
  registry.GetCounter("req.total", {{"replica", "b"}}).Increment(4);
  Histogram& h = registry.GetHistogram("lat.ms", {}, {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);
  const std::string text = registry.Snapshot().ToPrometheus();

  // One TYPE line despite two label sets; '.' sanitized to '_'.
  std::size_t type_count = 0, pos = 0;
  while ((pos = text.find("# TYPE req_total counter", pos)) !=
         std::string::npos) {
    ++type_count;
    pos += 1;
  }
  EXPECT_EQ(type_count, 1u);
  EXPECT_NE(text.find("req_total{replica=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("req_total{replica=\"b\"} 4"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 3"), std::string::npos);
}

}  // namespace
}  // namespace blot::obs
