#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/json.h"

namespace blot::obs {
namespace {

std::vector<util::JsonValue> ReadJsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<util::JsonValue> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    lines.push_back(util::JsonValue::Parse(line));
  }
  return lines;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(EventSeverityTest, NamesRoundTrip) {
  for (const EventSeverity s :
       {EventSeverity::kDebug, EventSeverity::kInfo, EventSeverity::kWarn,
        EventSeverity::kError})
    EXPECT_EQ(SeverityFromName(SeverityName(s)), s);
  EXPECT_THROW(SeverityFromName("fatal"), InvalidArgument);
}

TEST(EventLogTest, DisabledLogDropsEverything) {
  EventLog log;
  EXPECT_FALSE(log.enabled());
  log.Info("cat", "dropped");
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_TRUE(log.Recent().empty());
}

TEST(EventLogTest, RecentIsOrderedWithMonotonicSeq) {
  EventLog log;
  log.set_enabled(true);
  log.Info("a", "first");
  log.Warn("b", "second", {Field("k", 7)});
  log.Emit(EventSeverity::kError, "c", "third");
  const std::vector<Event> recent = log.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_LT(recent[0].seq, recent[1].seq);
  EXPECT_LT(recent[1].seq, recent[2].seq);
  EXPECT_EQ(recent[0].category, "a");
  EXPECT_EQ(recent[1].severity, EventSeverity::kWarn);
  ASSERT_EQ(recent[1].fields.size(), 1u);
  EXPECT_EQ(recent[1].fields[0].first, "k");
  EXPECT_EQ(recent[1].fields[0].second, "7");
  EXPECT_EQ(log.emitted(), 3u);
}

TEST(EventLogTest, EventJsonIsParseableAndEscaped) {
  EventLog log;
  log.set_enabled(true);
  log.Warn("cache.pressure", "a \"quoted\"\nmessage",
           {Field("path", std::string("a\\b")), Field("ratio", 0.5)});
  const std::vector<Event> recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  const util::JsonValue parsed = util::JsonValue::Parse(recent[0].ToJson());
  EXPECT_EQ(parsed.At("severity").AsString(), "warn");
  EXPECT_EQ(parsed.At("category").AsString(), "cache.pressure");
  EXPECT_EQ(parsed.At("message").AsString(), "a \"quoted\"\nmessage");
  EXPECT_EQ(parsed.At("fields").At("path").AsString(), "a\\b");
  EXPECT_EQ(parsed.At("fields").At("ratio").AsString(), "0.5");
  EXPECT_GE(parsed.At("seq").AsUint64(), 1u);
  EXPECT_GT(parsed.At("wall_ms").AsUint64(), 0u);
}

TEST(EventLogTest, SamplingKeepsOneInNPerCategoryButAllWarnings) {
  EventLog log;
  log.set_enabled(true);
  log.set_sample_every(4);
  // All emissions from this (single) thread land in one shard, so the
  // per-category counter is deterministic: 8 infos keep 2.
  for (int i = 0; i < 8; ++i) log.Info("noisy", "info");
  for (int i = 0; i < 3; ++i) log.Warn("noisy", "warn");
  std::size_t infos = 0, warns = 0;
  for (const Event& e : log.Recent(64))
    (e.severity == EventSeverity::kWarn ? warns : infos)++;
  EXPECT_EQ(infos, 2u);
  EXPECT_EQ(warns, 3u);
  EXPECT_EQ(log.sampled_out(), 6u);
}

TEST(EventLogTest, SinkReceivesJsonlOnFlushAndClose) {
  const std::string path = TempPath("event_log_test_sink.jsonl");
  std::remove(path.c_str());
  EventLog log;
  log.OpenSink(path);
  EXPECT_TRUE(log.enabled());
  EXPECT_TRUE(log.has_sink());
  log.Info("quarantine", "partition quarantined",
           {Field("replica", 1), Field("partition", 42)});
  log.Warn("failover", "rerouted");
  log.Flush();
  const std::vector<util::JsonValue> after_flush = ReadJsonl(path);
  ASSERT_EQ(after_flush.size(), 2u);
  EXPECT_EQ(after_flush[0].At("category").AsString(), "quarantine");
  EXPECT_EQ(after_flush[0].At("fields").At("partition").AsString(), "42");

  log.Info("repair", "healed");
  log.CloseSink();  // flushes the tail and disables
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.has_sink());
  const std::vector<util::JsonValue> after_close = ReadJsonl(path);
  ASSERT_EQ(after_close.size(), 3u);
  EXPECT_EQ(after_close[2].At("category").AsString(), "repair");
  std::remove(path.c_str());
}

TEST(EventLogTest, OpenSinkOnBadPathThrows) {
  EventLog log;
  EXPECT_THROW(log.OpenSink("/nonexistent-dir/events.jsonl"), ReadError);
  EXPECT_FALSE(log.enabled());
}

TEST(EventLogTest, ResetForTestClearsRingAndCounters) {
  EventLog log;
  log.set_enabled(true);
  log.Info("cat", "one");
  log.ResetForTest();
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_TRUE(log.Recent().empty());
  log.Info("cat", "two");
  ASSERT_EQ(log.Recent().size(), 1u);
  EXPECT_EQ(log.Recent()[0].seq, 1u);  // sequence restarted
}

}  // namespace
}  // namespace blot::obs
