// Hammers one registry from every pool worker at once: registration
// races, counter increments and histogram observations must all land
// without losing updates.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace blot::obs {
namespace {

TEST(MetricsConcurrencyTest, CountersAreExactUnderThreadPoolLoad) {
  MetricsRegistry registry;
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kIncrementsPerTask = 10000;

  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](std::size_t) {
    Counter& counter = registry.GetCounter("race.total");
    for (std::size_t i = 0; i < kIncrementsPerTask; ++i)
      counter.Increment();
  });
  EXPECT_EQ(registry.GetCounter("race.total").value(),
            kTasks * kIncrementsPerTask);
}

TEST(MetricsConcurrencyTest, ConcurrentRegistrationYieldsOneInstance) {
  MetricsRegistry registry;
  constexpr std::size_t kTasks = 64;
  std::vector<Counter*> seen(kTasks, nullptr);

  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](std::size_t t) {
    // Every task races to register the same 8 labeled metrics.
    for (int k = 0; k < 8; ++k) {
      Counter& c = registry.GetCounter(
          "conc.total", {{"k", std::to_string(k)}});
      c.Increment();
      if (k == 0) seen[t] = &c;
    }
  });
  for (std::size_t t = 1; t < kTasks; ++t)
    EXPECT_EQ(seen[t], seen[0]) << "task " << t << " got a different "
                                << "instance for the same key";
  for (int k = 0; k < 8; ++k)
    EXPECT_EQ(registry
                  .GetCounter("conc.total", {{"k", std::to_string(k)}})
                  .value(),
              kTasks);
}

TEST(MetricsConcurrencyTest, HistogramCountMatchesObservationsUnderLoad) {
  MetricsRegistry registry;
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kObsPerTask = 5000;

  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](std::size_t t) {
    Histogram& h = registry.GetHistogram("race.ms");
    for (std::size_t i = 0; i < kObsPerTask; ++i)
      h.Observe(double(t % 7) * 0.01);
  });
  const Histogram& h = registry.GetHistogram("race.ms");
  EXPECT_EQ(h.count(), kTasks * kObsPerTask);
  // Per-bucket tallies must agree with the total.
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t c : h.counts()) bucket_sum += c;
  EXPECT_EQ(bucket_sum, kTasks * kObsPerTask);
}

TEST(MetricsConcurrencyTest, SnapshotWhileWritingIsConsistent) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  auto writer = pool.Submit([&] {
    Counter& c = registry.GetCounter("live.total");
    while (!stop.load(std::memory_order_relaxed)) c.Increment();
  });
  // Snapshots taken mid-stream must be internally sane, never torn.
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.Snapshot();
    if (const CounterSnapshot* c = snap.FindCounter("live.total"))
      EXPECT_LE(c->value, registry.GetCounter("live.total").value());
  }
  stop.store(true);
  writer.get();
}

}  // namespace
}  // namespace blot::obs
