#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "util/thread_pool.h"

namespace blot::obs {
namespace {

TEST(TraceSpanTest, AttributesRoundTrip) {
  TraceSpan span("root");
  span.AddAttribute("replica", std::string("KD8xT4/COL-GZIP"));
  span.AddAttribute("cost_ms", 12.5);
  span.AddAttribute("partitions", std::uint64_t{7});
  EXPECT_EQ(span.attribute("replica"), "KD8xT4/COL-GZIP");
  EXPECT_EQ(span.attribute("cost_ms"), "12.500");
  EXPECT_EQ(span.attribute("partitions"), "7");
  EXPECT_EQ(span.attribute("missing"), "");
}

TEST(TraceSpanTest, ChildrenKeepStableAddresses) {
  TraceSpan root("root");
  TraceSpan& a = root.AddChild("a");
  // Append enough children to force the container to reallocate; `a`
  // must stay where it was.
  for (int i = 0; i < 100; ++i) root.AddChild("filler");
  a.AddAttribute("k", std::string("v"));
  ASSERT_NE(root.FindChild("a"), nullptr);
  EXPECT_EQ(root.FindChild("a"), &a);
  EXPECT_EQ(root.FindChild("a")->attribute("k"), "v");
  EXPECT_EQ(root.FindChild("nope"), nullptr);
}

TEST(TraceSpanTest, RenderShowsTreeStructure) {
  TraceSpan root("store-query");
  root.set_duration_ms(3.42);
  root.AddAttribute("replica", std::string("A"));
  TraceSpan& route = root.AddChild("route");
  route.set_duration_ms(0.01);
  route.AddAttribute("candidates", std::uint64_t{2});
  TraceSpan& execute = root.AddChild("execute");
  execute.set_duration_ms(3.38);
  TraceSpan& scan = execute.AddChild("scan");
  scan.set_duration_ms(1.0);

  const std::string out = root.Render();
  EXPECT_NE(out.find("store-query (3.42 ms) replica=A"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("├─ route (0.01 ms) candidates=2"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("└─ execute (3.38 ms)"), std::string::npos) << out;
  // Grandchild is indented under its parent with a cleared gutter
  // (execute is the last child, so no '│' continues past it).
  EXPECT_NE(out.find("   └─ scan (1.00 ms)"), std::string::npos) << out;
}

TEST(TraceSpanTest, MiddleChildGutterContinues) {
  TraceSpan root("r");
  root.AddChild("first").AddChild("leaf");
  root.AddChild("second");
  const std::string out = root.Render();
  // `first` has a following sibling, so its subtree's gutter keeps the
  // vertical bar.
  EXPECT_NE(out.find("│  └─ leaf"), std::string::npos) << out;
}

TEST(TraceSpanTest, ConcurrentAnnotationIsSafe) {
  TraceSpan root("parallel");
  ThreadPool pool(8);
  pool.ParallelFor(64, [&](std::size_t i) {
    TraceSpan& child = root.AddChild("task");
    child.AddAttribute("i", std::uint64_t{i});
    child.set_duration_ms(double(i));
  });
  // All 64 children landed; Render doesn't crash on a wide tree.
  const std::string out = root.Render();
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("task", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, 64u);
}

TEST(SpanTimerTest, StampsDurationOnDestruction) {
  TraceSpan span("timed");
  {
    SpanTimer timer(&span);
    EXPECT_GE(timer.ElapsedMs(), 0.0);
  }
  EXPECT_GE(span.duration_ms(), 0.0);
}

TEST(SpanTimerTest, NullSpanIsANoOp) {
  SpanTimer timer(nullptr);
  EXPECT_DOUBLE_EQ(timer.ElapsedMs(), 0.0);
}

}  // namespace
}  // namespace blot::obs
