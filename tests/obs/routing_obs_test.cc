// End-to-end observability of query routing: a traced BlotStore::Execute
// must report the chosen replica, the cost model's estimate and the
// measured wall clock — in the RoutedResult, in the span tree, and in
// the global metrics registry.
#include <gtest/gtest.h>

#include <string>

#include "core/store.h"
#include "gen/taxi_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace blot {
namespace {

struct RoutingObsTest : ::testing::Test {
  Dataset dataset;
  STRange universe;
  CostModel model{EnvironmentModel::AmazonS3Emr()};

  RoutingObsTest() {
    TaxiFleetConfig config;
    config.num_taxis = 8;
    config.samples_per_taxi = 200;
    dataset = GenerateTaxiFleet(config);
    universe = config.Universe();
  }

  void SetUp() override {
    obs::MetricsRegistry::global().Reset();
    obs::MetricsRegistry::global().set_enabled(true);
  }
  void TearDown() override {
    obs::MetricsRegistry::global().set_enabled(false);
  }

  BlotStore MakeStore() {
    BlotStore store(Dataset(dataset), universe);
    store.AddReplica({{.spatial_partitions = 2, .temporal_partitions = 2},
                      EncodingScheme::FromName("ROW-SNAPPY")});
    store.AddReplica({{.spatial_partitions = 16, .temporal_partitions = 8},
                      EncodingScheme::FromName("COL-GZIP")});
    return store;
  }
};

TEST_F(RoutingObsTest, TracedQueryRecordsEstimatedAndMeasuredCost) {
  BlotStore store = MakeStore();
  const STRange query = STRange::FromBounds(
      universe.x_min(), universe.x_min() + universe.Width() / 8,
      universe.y_min(), universe.y_min() + universe.Height() / 8,
      universe.t_min(), universe.t_min() + universe.Duration() / 8);

  obs::TraceSpan root("store-query");
  const auto routed = store.Execute(query, model, nullptr, &root);

  // The result itself carries both sides of the comparison.
  EXPECT_GT(routed.estimated_cost_ms, 0.0);
  EXPECT_GT(routed.measured_cost_ms, 0.0);
  EXPECT_LT(routed.replica_index, store.NumReplicas());
  EXPECT_GT(routed.predicted_partitions, 0u);

  // The span tree carries them too, with route/execute children.
  EXPECT_EQ(root.attribute("replica"),
            store.replica(routed.replica_index).config().Name());
  EXPECT_NE(root.attribute("estimated_cost_ms"), "");
  EXPECT_NE(root.attribute("measured_cost_ms"), "");
  const obs::TraceSpan* route = root.FindChild("route");
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->attribute("candidates"), "2");
  const obs::TraceSpan* execute = root.FindChild("execute");
  ASSERT_NE(execute, nullptr);
  EXPECT_NE(execute->attribute("partitions_scanned"), "");

  // And the registry aggregated the same facts.
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().Snapshot();
  const obs::CounterSnapshot* total =
      snap.FindCounter("query.routed_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 1u);
  const std::string chosen =
      store.replica(routed.replica_index).config().Name();
  const obs::CounterSnapshot* per_replica =
      snap.FindCounter("query.routed_total", {{"replica", chosen}});
  ASSERT_NE(per_replica, nullptr);
  EXPECT_EQ(per_replica->value, 1u);

  const obs::HistogramSnapshot* estimated =
      snap.FindHistogram("query.estimated_cost_ms");
  ASSERT_NE(estimated, nullptr);
  EXPECT_EQ(estimated->count, 1u);
  EXPECT_NEAR(estimated->sum, routed.estimated_cost_ms, 1e-9);

  const obs::HistogramSnapshot* measured =
      snap.FindHistogram("query.measured_ms");
  ASSERT_NE(measured, nullptr);
  EXPECT_EQ(measured->count, 1u);
  EXPECT_NEAR(measured->sum, routed.measured_cost_ms, 1e-9);

  const obs::HistogramSnapshot* error =
      snap.FindHistogram("query.cost_error_pct");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->count, 1u);
}

TEST_F(RoutingObsTest, UntracedQueryStillRoutesAndMeasures) {
  BlotStore store = MakeStore();
  const auto routed = store.Execute(universe, model);
  EXPECT_GT(routed.estimated_cost_ms, 0.0);
  EXPECT_GT(routed.measured_cost_ms, 0.0);
  EXPECT_GT(routed.result.stats.partitions_scanned, 0u);
}

TEST_F(RoutingObsTest, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry::global().set_enabled(false);
  BlotStore store = MakeStore();
  (void)store.Execute(universe, model);
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().Snapshot();
  const obs::CounterSnapshot* total =
      snap.FindCounter("query.routed_total");
  // Either never registered, or registered by another test but not
  // incremented by this query.
  if (total != nullptr) EXPECT_EQ(total->value, 0u);
}

TEST_F(RoutingObsTest, BatchExecutionRecordsSharedScanSavings) {
  BlotStore store = MakeStore();
  std::vector<STRange> queries;
  for (int i = 0; i < 4; ++i)
    queries.push_back(STRange::FromBounds(
        universe.x_min(), universe.x_max(), universe.y_min(),
        universe.y_max(), universe.t_min(),
        universe.t_min() + universe.Duration() * (i + 1) / 4));
  const auto batch = store.ExecuteBatch(queries, model);
  EXPECT_GT(batch.measured_ms, 0.0);

  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().Snapshot();
  const obs::CounterSnapshot* batches =
      snap.FindCounter("query.batches_total");
  ASSERT_NE(batches, nullptr);
  EXPECT_EQ(batches->value, 1u);
  const obs::CounterSnapshot* batch_queries =
      snap.FindCounter("query.batch_queries_total");
  ASSERT_NE(batch_queries, nullptr);
  EXPECT_EQ(batch_queries->value, queries.size());
  // Overlapping time slabs share partition scans, so savings accrue.
  const obs::CounterSnapshot* saved =
      snap.FindCounter("query.batch_shared_scans_saved_total");
  ASSERT_NE(saved, nullptr);
  EXPECT_EQ(saved->value,
            batch.naive_partition_scans - batch.stats.partitions_scanned);
}

}  // namespace
}  // namespace blot
