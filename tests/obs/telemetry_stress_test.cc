// Concurrency stress for the telemetry stack, run under the TSan CI job
// (test names carry the `Metrics` prefix the job's -R regex selects):
// many writer threads hammer the registry while the snapshotter samples
// it, and many threads emit events (across every severity) while a
// reader drains Recent() and a flusher forces sink drains.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace blot::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 2000;

TEST(MetricsTelemetryStressTest, RegistryUnderConcurrentWritesAndSnapshots) {
  MetricsRegistry registry;
  SnapshotterOptions options;
  options.interval = std::chrono::milliseconds(1);
  options.capacity = 16;
  MetricsSnapshotter snapshotter(options, &registry);
  snapshotter.Start();

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, &go, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // Mix of shared handles (contended atomics) and per-thread labels
      // (registration racing registration and Snapshot()).
      Counter& shared = registry.GetCounter("stress.shared_total");
      Counter& mine = registry.GetCounter(
          "stress.per_thread_total", {{"t", std::to_string(t)}});
      Histogram& lat = registry.GetHistogram("stress.lat_ms");
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared.Increment();
        mine.Increment();
        lat.Observe(double(i % 7) * 0.5);
        registry.GetGauge("stress.depth", {{"t", std::to_string(t)}})
            .Set(double(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
  snapshotter.Stop();

  const MetricsSnapshot snap = registry.Snapshot();
  const CounterSnapshot* shared = snap.FindCounter("stress.shared_total");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->value,
            std::uint64_t(kThreads) * std::uint64_t(kOpsPerThread));
  const HistogramSnapshot* lat = snap.FindHistogram("stress.lat_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count,
            std::uint64_t(kThreads) * std::uint64_t(kOpsPerThread));
  EXPECT_GE(snapshotter.samples_taken(), 1u);
  // The serialized ring must still reconstruct (no torn lines).
  EXPECT_FALSE(snapshotter.ToJsonl().empty());
}

TEST(MetricsTelemetryStressTest, EventLogUnderConcurrentEmitReadFlush) {
  const std::string path =
      std::string(::testing::TempDir()) + "/telemetry_stress_events.jsonl";
  std::remove(path.c_str());
  EventLog log;
  log.OpenSink(path);
  log.set_sample_every(3);  // sampling bookkeeping races too

  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&log, &go, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch (i % 3) {
          case 0:
            log.Info("stress.info", "info", {Field("t", t), Field("i", i)});
            break;
          case 1:
            log.Warn("stress.warn", "warn", {Field("t", t)});
            break;
          default:
            log.Emit(EventSeverity::kError, "stress.error", "error");
        }
      }
    });
  }
  std::thread reader([&log, &go, &done] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!done.load(std::memory_order_acquire)) {
      for (const Event& e : log.Recent(32)) {
        EXPECT_FALSE(e.category.empty());
        EXPECT_GE(e.seq, 1u);
      }
      log.Flush();
    }
  });
  go.store(true, std::memory_order_release);
  for (std::thread& e : emitters) e.join();
  done.store(true, std::memory_order_release);
  reader.join();
  log.CloseSink();

  // Warn/error events bypass sampling: every one must be accounted for.
  const std::uint64_t warns_and_errors =
      std::uint64_t(kThreads) * ((kOpsPerThread + 1) / 3 + kOpsPerThread / 3);
  EXPECT_GE(log.emitted(), warns_and_errors);
  EXPECT_EQ(log.emitted() + log.sampled_out(),
            std::uint64_t(kThreads) * std::uint64_t(kOpsPerThread));

  // Every line in the sink is a complete JSONL record (no interleaved
  // partial writes), and seq values are unique.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, log.emitted());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace blot::obs
