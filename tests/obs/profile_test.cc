#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace blot::obs {
namespace {

QueryProfile SampleProfile() {
  QueryProfile p;
  p.AddStage(Stage::kRoute, 0.25);
  p.AddStage(Stage::kExecute, 3.0, 4096);
  p.AddStage(Stage::kFailover, 0.75);
  p.AddStage(Stage::kCacheProbe, 0.1, 1024);
  p.AddStage(Stage::kDecode, 2.0, 4096);
  p.AddStage(Stage::kFilter, 0.5);
  p.partitions_touched = 6;
  p.partitions_skipped = 58;
  p.records_scanned = 1234;
  p.cache_hits = 2;
  p.cache_misses = 4;
  p.cache_hit_bytes = 1024;
  p.cache_miss_bytes = 4096;
  p.replica_index = 1;
  p.attempts = 2;
  p.degraded = true;
  p.estimated_cost_ms = 2.0;
  p.measured_cost_ms = 4.0;
  p.total_ms = 4.125;  // exactly representable: ToJson prints it verbatim
  return p;
}

TEST(QueryProfileTest, StageNamesMatchEnumOrder) {
  EXPECT_EQ(StageName(Stage::kRoute), "route");
  EXPECT_EQ(StageName(Stage::kExecute), "execute");
  EXPECT_EQ(StageName(Stage::kFailover), "failover");
  EXPECT_EQ(StageName(Stage::kRepair), "repair");
  EXPECT_EQ(StageName(Stage::kCacheProbe), "cache_probe");
  EXPECT_EQ(StageName(Stage::kDecode), "decode");
  EXPECT_EQ(StageName(Stage::kFilter), "filter");
}

TEST(QueryProfileTest, AddStageAccumulates) {
  QueryProfile p;
  p.AddStage(Stage::kDecode, 1.5, 100);
  p.AddStage(Stage::kDecode, 0.5, 50);
  EXPECT_DOUBLE_EQ(p.stage(Stage::kDecode), 2.0);
  EXPECT_EQ(p.stage_bytes[static_cast<std::size_t>(Stage::kDecode)], 150u);
}

TEST(QueryProfileTest, TopLevelSumExcludesSubStages) {
  const QueryProfile p = SampleProfile();
  // route + execute + failover + repair only; cache_probe/decode/filter
  // nest inside execute and must not double-count.
  EXPECT_DOUBLE_EQ(p.TopLevelSumMs(), 0.25 + 3.0 + 0.75);
}

TEST(QueryProfileTest, CostErrorPct) {
  QueryProfile p;
  EXPECT_DOUBLE_EQ(p.CostErrorPct(), 0.0);  // unmeasured
  p.measured_cost_ms = 4.0;
  p.estimated_cost_ms = 2.0;
  EXPECT_DOUBLE_EQ(p.CostErrorPct(), 50.0);
  p.estimated_cost_ms = 6.0;  // overestimate: same magnitude
  EXPECT_DOUBLE_EQ(p.CostErrorPct(), 50.0);
}

TEST(QueryProfileTest, ToJsonCarriesEveryField) {
  const std::string json = SampleProfile().ToJson();
  EXPECT_NE(json.find("\"route\":{\"ms\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"execute\":{\"ms\":3,\"bytes\":4096}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"partitions_touched\":6"), std::string::npos);
  EXPECT_NE(json.find("\"partitions_skipped\":58"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit_bytes\":1024"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"attempts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cost_error_pct\":50"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\":4.125"), std::string::npos) << json;
}

TEST(QueryProfileTest, RenderShowsStagesAndConsistencyLine) {
  const std::string text = SampleProfile().Render();
  EXPECT_NE(text.find("route"), std::string::npos);
  EXPECT_NE(text.find("decode"), std::string::npos);
  EXPECT_NE(text.find("total 4.125 ms (stages sum 4.000 ms)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("replica=1 attempts=2 degraded=yes partitions=6/64"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("[parallel scan"), std::string::npos);
}

TEST(QueryProfileTest, RenderFlagsParallelScan) {
  QueryProfile p = SampleProfile();
  p.parallel_scan = true;
  EXPECT_NE(p.Render().find("[parallel scan"), std::string::npos);
}

TEST(QueryProfileTest, ExportToSpanEmitsNonEmptyStagesOnly) {
  const QueryProfile p = SampleProfile();
  TraceSpan span("query");
  p.ExportToSpan(span);
  const std::string rendered = span.Render();
  EXPECT_NE(rendered.find("profile.route_ms=0.25"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("profile.decode_bytes=4096"), std::string::npos);
  EXPECT_NE(rendered.find("profile.cost_error_pct=50"), std::string::npos);
  // kRepair never ran: no attribute at all.
  EXPECT_EQ(rendered.find("profile.repair_ms"), std::string::npos);
}

TEST(QueryProfileMetricsTest, RecordProfileFillsStageHistograms) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.Reset();
  registry.set_enabled(false);
  RecordProfile(SampleProfile());  // disabled: must not register/observe
  EXPECT_EQ(registry.Snapshot().FindCounter("query.profiled_total"),
            nullptr);

  registry.set_enabled(true);
  RecordProfile(SampleProfile());
  RecordProfile(SampleProfile());
  registry.set_enabled(false);

  const MetricsSnapshot snap = registry.Snapshot();
  const CounterSnapshot* profiled = snap.FindCounter("query.profiled_total");
  ASSERT_NE(profiled, nullptr);
  EXPECT_EQ(profiled->value, 2u);
  const HistogramSnapshot* decode =
      snap.FindHistogram("query.stage_ms", {{"stage", "decode"}});
  ASSERT_NE(decode, nullptr);
  EXPECT_EQ(decode->count, 2u);
  EXPECT_DOUBLE_EQ(decode->sum, 4.0);
  // The repair stage never ran: its histogram exists (registered by the
  // cached-handle table) but stays empty.
  const HistogramSnapshot* repair =
      snap.FindHistogram("query.stage_ms", {{"stage", "repair"}});
  ASSERT_NE(repair, nullptr);
  EXPECT_EQ(repair->count, 0u);
  const CounterSnapshot* decode_bytes =
      snap.FindCounter("query.stage_bytes_total", {{"stage", "decode"}});
  ASSERT_NE(decode_bytes, nullptr);
  EXPECT_EQ(decode_bytes->value, 2u * 4096u);
  registry.Reset();
}

}  // namespace
}  // namespace blot::obs
