// Round-trips a registry snapshot through the JSON exporter: a small
// recursive-descent parser (test-only) reads the text back and the test
// asserts the parsed values match the live registry exactly.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.h"

namespace blot::obs {
namespace {

// --- Minimal JSON model + parser, just enough for the exporter's output ---

struct JsonValue;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;

  double AsNumber() const { return std::get<double>(v); }
  const std::string& AsString() const { return std::get<std::string>(v); }
  const JsonArray& AsArray() const { return std::get<JsonArray>(v); }
  const JsonObject& AsObject() const { return std::get<JsonObject>(v); }
  const JsonValue& At(const std::string& key) const {
    auto it = AsObject().find(key);
    EXPECT_NE(it, AsObject().end()) << "missing key: " << key;
    return *it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage after JSON";
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char Peek() {
    SkipSpace();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return text_[pos_];
  }

  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return JsonValue{ParseString()};
      case 't': pos_ += 4; return JsonValue{true};
      case 'f': pos_ += 5; return JsonValue{false};
      case 'n': pos_ += 4; return JsonValue{nullptr};
      default: return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonObject object;
    if (Peek() == '}') {
      ++pos_;
      return JsonValue{std::move(object)};
    }
    for (;;) {
      std::string key = ParseString();
      Expect(':');
      object[key] = std::make_shared<JsonValue>(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return JsonValue{std::move(object)};
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonArray array;
    if (Peek() == ']') {
      ++pos_;
      return JsonValue{std::move(array)};
    }
    for (;;) {
      array.push_back(std::make_shared<JsonValue>(ParseValue()));
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return JsonValue{std::move(array)};
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':
            // Exporter only emits \u00XX for control characters.
            out += static_cast<char>(
                std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    Expect('"');
    return out;
  }

  JsonValue ParseNumber() {
    SkipSpace();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E'))
      ++end;
    const double value = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return JsonValue{value};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

const JsonValue* FindByName(const JsonArray& entries,
                            const std::string& name,
                            const std::string& label_key = "",
                            const std::string& label_value = "") {
  for (const auto& entry : entries) {
    if (entry->At("name").AsString() != name) continue;
    if (!label_key.empty()) {
      const JsonObject& labels = entry->At("labels").AsObject();
      auto it = labels.find(label_key);
      if (it == labels.end() || it->second->AsString() != label_value)
        continue;
    }
    return entry.get();
  }
  return nullptr;
}

TEST(JsonExportTest, RoundTripsCountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("rt.requests_total").Increment(123);
  registry.GetCounter("rt.requests_total", {{"replica", "a/b"}})
      .Increment(7);
  registry.GetGauge("rt.depth").Set(4.25);
  Histogram& h = registry.GetHistogram("rt.latency_ms", {}, {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(0.6);
  h.Observe(5.0);
  h.Observe(99.0);  // overflow

  const std::string json = registry.Snapshot().ToJson();
  JsonParser parser(json);
  const JsonValue root = parser.Parse();

  const JsonValue* plain =
      FindByName(root.At("counters").AsArray(), "rt.requests_total");
  ASSERT_NE(plain, nullptr);
  EXPECT_DOUBLE_EQ(plain->At("value").AsNumber(), 123.0);

  const JsonValue* labeled = FindByName(root.At("counters").AsArray(),
                                        "rt.requests_total", "replica",
                                        "a/b");
  ASSERT_NE(labeled, nullptr);
  EXPECT_DOUBLE_EQ(labeled->At("value").AsNumber(), 7.0);

  const JsonValue* gauge =
      FindByName(root.At("gauges").AsArray(), "rt.depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->At("value").AsNumber(), 4.25);

  const JsonValue* hist =
      FindByName(root.At("histograms").AsArray(), "rt.latency_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->At("count").AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(hist->At("sum").AsNumber(), 0.5 + 0.6 + 5.0 + 99.0);
  EXPECT_DOUBLE_EQ(hist->At("overflow").AsNumber(), 1.0);
  // Only occupied finite buckets are emitted: {le: 1, count: 2} and
  // {le: 10, count: 1}.
  const JsonArray& buckets = hist->At("buckets").AsArray();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0]->At("le").AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[0]->At("count").AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(buckets[1]->At("le").AsNumber(), 10.0);
  EXPECT_DOUBLE_EQ(buckets[1]->At("count").AsNumber(), 1.0);
  // Derived stats agree with the live histogram.
  EXPECT_NEAR(hist->At("mean").AsNumber(), h.Mean(), 1e-12);
  EXPECT_NEAR(hist->At("p50").AsNumber(), h.Percentile(50), 1e-12);
  EXPECT_NEAR(hist->At("p99").AsNumber(), h.Percentile(99), 1e-12);
}

TEST(JsonExportTest, EscapesSpecialCharactersInLabels) {
  MetricsRegistry registry;
  registry.GetCounter("esc.total", {{"path", "a\"b\\c\nd"}}).Increment();
  const std::string json = registry.Snapshot().ToJson();
  JsonParser parser(json);
  const JsonValue root = parser.Parse();
  const JsonValue* entry = FindByName(root.At("counters").AsArray(),
                                      "esc.total", "path", "a\"b\\c\nd");
  ASSERT_NE(entry, nullptr) << json;
  EXPECT_DOUBLE_EQ(entry->At("value").AsNumber(), 1.0);
}

TEST(JsonExportTest, EmptyRegistryIsValidJson) {
  MetricsRegistry registry;
  const std::string json = registry.Snapshot().ToJson();
  JsonParser parser(json);
  const JsonValue root = parser.Parse();
  EXPECT_TRUE(root.At("counters").AsArray().empty());
  EXPECT_TRUE(root.At("gauges").AsArray().empty());
  EXPECT_TRUE(root.At("histograms").AsArray().empty());
}

TEST(JsonExportTest, EmptyHistogramExportsZeroQuantiles) {
  MetricsRegistry registry;
  registry.GetHistogram("edge.empty_ms", {}, {1.0, 2.0});
  const std::string json = registry.Snapshot().ToJson();
  JsonParser parser(json);
  const JsonValue root = parser.Parse();
  const JsonValue* hist =
      FindByName(root.At("histograms").AsArray(), "edge.empty_ms");
  ASSERT_NE(hist, nullptr) << json;
  EXPECT_DOUBLE_EQ(hist->At("count").AsNumber(), 0.0);
  EXPECT_TRUE(hist->At("buckets").AsArray().empty());
  EXPECT_DOUBLE_EQ(hist->At("p50").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(hist->At("p95").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(hist->At("p99").AsNumber(), 0.0);
}

TEST(JsonExportTest, AllOverflowHistogramExportsLastBoundQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("edge.overflow_ms", {}, {1.0, 2.0});
  for (int i = 0; i < 5; ++i) h.Observe(1000.0);
  const std::string json = registry.Snapshot().ToJson();
  JsonParser parser(json);
  const JsonValue root = parser.Parse();
  const JsonValue* hist =
      FindByName(root.At("histograms").AsArray(), "edge.overflow_ms");
  ASSERT_NE(hist, nullptr) << json;
  EXPECT_DOUBLE_EQ(hist->At("count").AsNumber(), 5.0);
  EXPECT_DOUBLE_EQ(hist->At("overflow").AsNumber(), 5.0);
  EXPECT_TRUE(hist->At("buckets").AsArray().empty());  // no finite mass
  EXPECT_DOUBLE_EQ(hist->At("p50").AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(hist->At("p99").AsNumber(), 2.0);
}

TEST(PrometheusEdgeTest, EmptyAndOverflowHistograms) {
  MetricsRegistry registry;
  registry.GetHistogram("edge.empty_ms", {}, {1.0});
  Histogram& over = registry.GetHistogram("edge.over_ms", {}, {1.0, 2.0});
  over.Observe(50.0);
  const std::string text = registry.Snapshot().ToPrometheus();
  // Empty histogram still emits a complete, consistent family.
  EXPECT_NE(text.find("edge_empty_ms_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("edge_empty_ms_count 0"), std::string::npos);
  EXPECT_NE(text.find("edge_empty_ms{quantile=\"0.5\"} 0"),
            std::string::npos);
  // All-overflow: finite cumulative buckets stay 0, +Inf carries the
  // count, quantiles degrade to the last finite bound.
  EXPECT_NE(text.find("edge_over_ms_bucket{le=\"2\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("edge_over_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("edge_over_ms{quantile=\"0.99\"} 2"),
            std::string::npos);
}

}  // namespace
}  // namespace blot::obs
