#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

TEST(FitLinearTest, ExactLineRecovered) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinearTest, NoisyLineApproximatelyRecovered) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.NextDouble(0, 100);
    x.push_back(xi);
    y.push_back(0.5 * xi + 20 + rng.NextGaussian());
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 20, 0.5);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinearTest, RejectsDegenerateInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(FitLinear(one, one), InvalidArgument);
  const std::vector<double> constant = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(FitLinear(constant, y), InvalidArgument);
  const std::vector<double> x = {1, 2};
  const std::vector<double> mismatched = {1, 2, 3};
  EXPECT_THROW(FitLinear(x, mismatched), InvalidArgument);
}

TEST(SummarizeTest, BasicMoments) {
  const std::vector<double> v = {1, 2, 3, 4};
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_THROW(Summarize({}), InvalidArgument);
}

TEST(KMeansTest, SeparatesWellSeparatedClusters) {
  Rng rng(7);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 50; ++i)
    points.push_back({rng.NextGaussian() * 0.1, rng.NextGaussian() * 0.1});
  for (int i = 0; i < 50; ++i)
    points.push_back(
        {10 + rng.NextGaussian() * 0.1, 10 + rng.NextGaussian() * 0.1});
  const KMeansResult result = KMeans(points, 2, rng);
  ASSERT_EQ(result.centroids.size(), 2u);
  // One centroid near (0,0), the other near (10,10), in either order.
  const bool first_is_origin = result.centroids[0][0] < 5;
  const auto& origin = result.centroids[first_is_origin ? 0 : 1];
  const auto& far = result.centroids[first_is_origin ? 1 : 0];
  EXPECT_NEAR(origin[0], 0, 0.5);
  EXPECT_NEAR(far[0], 10, 0.5);
  // All points in the same blob share an assignment.
  for (int i = 1; i < 50; ++i)
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
  for (int i = 51; i < 100; ++i)
    EXPECT_EQ(result.assignment[i], result.assignment[50]);
  EXPECT_NE(result.assignment[0], result.assignment[50]);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Rng rng(9);
  std::vector<std::vector<double>> points = {{1}, {5}, {9}};
  const KMeansResult result = KMeans(points, 3, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, ValidatesArguments) {
  Rng rng(11);
  std::vector<std::vector<double>> points = {{1}, {2}};
  EXPECT_THROW(KMeans(points, 0, rng), InvalidArgument);
  EXPECT_THROW(KMeans(points, 3, rng), InvalidArgument);
  std::vector<std::vector<double>> ragged = {{1}, {2, 3}};
  EXPECT_THROW(KMeans(ragged, 1, rng), InvalidArgument);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  Rng rng(13);
  std::vector<std::vector<double>> points = {{0, 0}, {2, 4}, {4, 2}};
  const KMeansResult result = KMeans(points, 1, rng);
  EXPECT_NEAR(result.centroids[0][0], 2.0, 1e-9);
  EXPECT_NEAR(result.centroids[0][1], 2.0, 1e-9);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2);
  EXPECT_THROW(Percentile({}, 50), InvalidArgument);
  EXPECT_THROW(Percentile(v, 101), InvalidArgument);
}

}  // namespace
}  // namespace blot
