#include "util/bytes.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

TEST(ZigZagTest, RoundTripsExtremes) {
  for (std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(ByteWriterReaderTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutF32(3.5f);
  w.PutF64(-2.25);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0xBEEF);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_EQ(r.GetF32(), 3.5f);
  EXPECT_EQ(r.GetF64(), -2.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteWriterReaderTest, VarintRoundTripSweep) {
  ByteWriter w;
  std::vector<std::uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(std::uint64_t{1} << shift);
    values.push_back((std::uint64_t{1} << shift) - 1);
  }
  values.push_back(~0ull);
  for (auto v : values) w.PutVarint(v);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  for (auto v : values) EXPECT_EQ(r.GetVarint(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteWriterReaderTest, SignedVarintRoundTripRandom) {
  Rng rng(3);
  ByteWriter w;
  std::vector<std::int64_t> values;
  for (int i = 0; i < 1000; ++i)
    values.push_back(static_cast<std::int64_t>(rng()));
  for (auto v : values) w.PutSignedVarint(v);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  for (auto v : values) EXPECT_EQ(r.GetSignedVarint(), v);
}

TEST(ByteWriterReaderTest, SmallVarintsAreCompact) {
  ByteWriter w;
  for (int i = 0; i < 100; ++i) w.PutVarint(static_cast<std::uint64_t>(i));
  EXPECT_EQ(w.size(), 100u);
}

TEST(ByteWriterReaderTest, LengthPrefixedAndString) {
  ByteWriter w;
  const Bytes payload = {1, 2, 3, 4};
  w.PutLengthPrefixed(payload);
  w.PutString("hello");
  const Bytes buf = w.Take();
  ByteReader r(buf);
  const BytesView read = r.GetLengthPrefixed();
  EXPECT_EQ(Bytes(read.begin(), read.end()), payload);
  EXPECT_EQ(r.GetString(), "hello");
}

TEST(ByteReaderTest, TruncationThrowsCorruptData) {
  const Bytes buf = {0x01, 0x02};
  ByteReader r(buf);
  EXPECT_THROW(r.GetU32(), CorruptData);
  ByteReader r2(buf);
  EXPECT_THROW(r2.GetBytes(3), CorruptData);
}

TEST(ByteReaderTest, UnterminatedVarintThrows) {
  const Bytes buf = {0x80, 0x80};
  ByteReader r(buf);
  EXPECT_THROW(r.GetVarint(), CorruptData);
}

TEST(ByteReaderTest, LengthPrefixBeyondInputThrows) {
  ByteWriter w;
  w.PutVarint(100);
  w.PutU8(1);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  EXPECT_THROW(r.GetLengthPrefixed(), CorruptData);
}

TEST(Fnv1aTest, KnownValuesAndSensitivity) {
  const Bytes empty;
  EXPECT_EQ(Fnv1a64(empty), 0xCBF29CE484222325ull);
  const Bytes a = {'a'};
  const Bytes b = {'b'};
  EXPECT_NE(Fnv1a64(a), Fnv1a64(b));
  EXPECT_EQ(Fnv1a64(a), Fnv1a64(a));
}

}  // namespace
}  // namespace blot
