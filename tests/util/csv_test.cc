#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace blot {
namespace {

TEST(CsvTest, ParsesPlainFields) {
  const auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, ParsesEmptyFields) {
  const auto fields = ParseCsvLine(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvTest, ParsesQuotedFieldsWithCommasAndEscapes) {
  const auto fields = ParseCsvLine(R"("a,b","say ""hi""",plain)");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
  EXPECT_EQ(fields[2], "plain");
}

TEST(CsvTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(ParseCsvLine("\"abc"), CorruptData);
}

TEST(CsvTest, FormatQuotesWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b"}), "\"a,b\"");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, FormatParseRoundTrip) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quote\"", ""};
  EXPECT_EQ(ParseCsvLine(FormatCsvLine(fields)), fields);
}

TEST(CsvTest, ReaderSkipsBlankLinesAndHandlesCrLf) {
  std::istringstream in("a,b\r\n\r\n\nc,d\n");
  CsvReader reader(in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRow(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(reader.ReadRow(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"c", "d"}));
  EXPECT_FALSE(reader.ReadRow(fields));
}

TEST(CsvTest, WriterReaderRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"1", "2.5", "hello,world"});
  writer.WriteRow({"x", "", "z"});
  std::istringstream in(out.str());
  CsvReader reader(in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRow(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "2.5", "hello,world"}));
  ASSERT_TRUE(reader.ReadRow(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"x", "", "z"}));
  EXPECT_FALSE(reader.ReadRow(fields));
}

}  // namespace
}  // namespace blot
