#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.h"

namespace blot {
namespace {

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw InvalidArgument("boom"); });
  EXPECT_THROW(future.get(), InvalidArgument);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](std::size_t i) {
                                  if (i == 50)
                                    throw CorruptData("bad partition");
                                }),
               CorruptData);
}

TEST(ThreadPoolTest, ManySmallBatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 20; ++round)
    pool.ParallelFor(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  EXPECT_EQ(sum.load(), 20L * 4950L);
}

TEST(ThreadPoolTest, InWorkerThreadIdentifiesOwnPoolOnly) {
  ThreadPool pool(2, "a");
  ThreadPool other(1, "b");
  EXPECT_FALSE(pool.InWorkerThread());
  EXPECT_TRUE(pool.Submit([&] { return pool.InWorkerThread(); }).get());
  EXPECT_FALSE(pool.Submit([&] { return other.InWorkerThread(); }).get());
  // Cross-pool blocking is the sanctioned pattern (request -> scan).
  EXPECT_EQ(pool.Submit([&] {
                  int sum = 0;
                  other.ParallelFor(4, [&](std::size_t) {});
                  return sum + 1;
                })
                .get(),
            1);
}

TEST(ThreadPoolTest, ExportsPerPoolGauges) {
  auto& registry = obs::MetricsRegistry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  auto& depth = registry.GetGauge("pool.queue_depth", {{"pool", "gaugetest"}});
  auto& active =
      registry.GetGauge("pool.active_workers", {{"pool", "gaugetest"}});
  {
    ThreadPool pool(1, "gaugetest");
    // One task parks the single worker; the next two sit in the queue,
    // so the gauge must reach at least 2 at some enqueue.
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    auto a = pool.Submit([gate] { gate.wait(); });
    auto b = pool.Submit([gate] { gate.wait(); });
    auto c = pool.Submit([gate] { gate.wait(); });
    EXPECT_GE(depth.value(), 2.0);
    release.set_value();
    a.get();
    b.get();
    c.get();
  }
  // All workers joined: nothing queued, nothing active.
  EXPECT_EQ(active.value(), 0.0);
  registry.set_enabled(was_enabled);
}

}  // namespace
}  // namespace blot
