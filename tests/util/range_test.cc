#include "util/range.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace blot {
namespace {

STRange Box(double x0, double x1, double y0, double y1, double t0,
            double t1) {
  return STRange::FromBounds(x0, x1, y0, y1, t0, t1);
}

TEST(STRangeTest, DefaultIsEmpty) {
  STRange r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Volume(), 0.0);
  EXPECT_FALSE(r.Contains(STPoint{0, 0, 0}));
}

TEST(STRangeTest, FromBoundsValidates) {
  EXPECT_THROW(STRange::FromBounds(1, 0, 0, 1, 0, 1), InvalidArgument);
  EXPECT_NO_THROW(STRange::FromBounds(0, 0, 0, 0, 0, 0));
}

TEST(STRangeTest, FromCentroidRoundTrips) {
  const STRange r =
      STRange::FromCentroid({.w = 2, .h = 4, .t = 6}, {10, 20, 30});
  EXPECT_DOUBLE_EQ(r.x_min(), 9);
  EXPECT_DOUBLE_EQ(r.x_max(), 11);
  EXPECT_DOUBLE_EQ(r.y_min(), 18);
  EXPECT_DOUBLE_EQ(r.y_max(), 22);
  EXPECT_DOUBLE_EQ(r.t_min(), 27);
  EXPECT_DOUBLE_EQ(r.t_max(), 33);
  EXPECT_EQ(r.Centroid(), (STPoint{10, 20, 30}));
  EXPECT_EQ(r.Size(), (RangeSize{2, 4, 6}));
}

TEST(STRangeTest, VolumeAndExtents) {
  const STRange r = Box(0, 2, 0, 3, 0, 5);
  EXPECT_DOUBLE_EQ(r.Width(), 2);
  EXPECT_DOUBLE_EQ(r.Height(), 3);
  EXPECT_DOUBLE_EQ(r.Duration(), 5);
  EXPECT_DOUBLE_EQ(r.Volume(), 30);
}

TEST(STRangeTest, ContainsPointClosedBounds) {
  const STRange r = Box(0, 1, 0, 1, 0, 1);
  EXPECT_TRUE(r.Contains(STPoint{0, 0, 0}));
  EXPECT_TRUE(r.Contains(STPoint{1, 1, 1}));
  EXPECT_TRUE(r.Contains(STPoint{0.5, 0.5, 0.5}));
  EXPECT_FALSE(r.Contains(STPoint{1.0001, 0.5, 0.5}));
  EXPECT_FALSE(r.Contains(STPoint{0.5, -0.0001, 0.5}));
}

TEST(STRangeTest, ContainsRange) {
  const STRange outer = Box(0, 10, 0, 10, 0, 10);
  EXPECT_TRUE(outer.Contains(Box(1, 9, 1, 9, 1, 9)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Box(1, 11, 1, 9, 1, 9)));
  EXPECT_TRUE(outer.Contains(STRange()));
  EXPECT_FALSE(STRange().Contains(outer));
}

TEST(STRangeTest, IntersectsSharedBoundaryCounts) {
  const STRange a = Box(0, 1, 0, 1, 0, 1);
  const STRange b = Box(1, 2, 0, 1, 0, 1);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  const STRange c = Box(1.001, 2, 0, 1, 0, 1);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(STRangeTest, IntersectsRequiresAllDimensions) {
  const STRange a = Box(0, 1, 0, 1, 0, 1);
  EXPECT_FALSE(a.Intersects(Box(0, 1, 0, 1, 2, 3)));
  EXPECT_FALSE(a.Intersects(Box(0, 1, 2, 3, 0, 1)));
  EXPECT_FALSE(a.Intersects(Box(2, 3, 0, 1, 0, 1)));
}

TEST(STRangeTest, EmptyIntersectsNothing) {
  const STRange a = Box(0, 1, 0, 1, 0, 1);
  EXPECT_FALSE(a.Intersects(STRange()));
  EXPECT_FALSE(STRange().Intersects(a));
  EXPECT_FALSE(STRange().Intersects(STRange()));
}

TEST(STRangeTest, IntersectionGeometry) {
  const STRange a = Box(0, 2, 0, 2, 0, 2);
  const STRange b = Box(1, 3, 1, 3, 1, 3);
  const STRange i = a.Intersection(b);
  EXPECT_EQ(i, Box(1, 2, 1, 2, 1, 2));
  EXPECT_TRUE(a.Intersection(Box(5, 6, 5, 6, 5, 6)).empty());
}

TEST(STRangeTest, UnionCoversBoth) {
  const STRange a = Box(0, 1, 0, 1, 0, 1);
  const STRange b = Box(2, 3, -1, 0.5, 0, 4);
  const STRange u = STRange::Union(a, b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_EQ(STRange::Union(a, STRange()), a);
  EXPECT_EQ(STRange::Union(STRange(), b), b);
}

TEST(STRangeTest, ExpandedGrowsAllSides) {
  const STRange r = Box(0, 1, 0, 1, 0, 1).Expanded(1, 2, 3);
  EXPECT_EQ(r, Box(-1, 2, -2, 3, -3, 4));
  EXPECT_THROW(Box(0, 1, 0, 1, 0, 1).Expanded(-1, 0, 0), InvalidArgument);
}

TEST(STRangeTest, DegenerateRangeIntersects) {
  const STRange point = Box(1, 1, 1, 1, 1, 1);
  const STRange box = Box(0, 2, 0, 2, 0, 2);
  EXPECT_TRUE(point.Intersects(box));
  EXPECT_TRUE(box.Contains(point));
  EXPECT_EQ(point.Volume(), 0.0);
}

TEST(STRangeTest, ToStringMentionsBounds) {
  EXPECT_NE(Box(0, 1, 2, 3, 4, 5).ToString().find("[0,1]"),
            std::string::npos);
  EXPECT_EQ(STRange().ToString(), "[empty]");
}

}  // namespace
}  // namespace blot
