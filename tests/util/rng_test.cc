#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.h"

namespace blot {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(17), 17u);
}

TEST(RngTest, NextUint64RejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.NextUint64(0), InvalidArgument);
}

TEST(RngTest, NextInt64CoversInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInt64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    if (rng.NextBool(0.3)) ++hits;
  EXPECT_NEAR(double(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.05);
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(29);
  int rank0 = 0, rank9 = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t r = rng.NextZipf(10, 1.0);
    ASSERT_LT(r, 10u);
    if (r == 0) ++rank0;
    if (r == 9) ++rank9;
  }
  EXPECT_GT(rank0, rank9 * 3);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(31);
  const auto perm = rng.Permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng rng(37);
  Rng child = rng.Fork();
  Rng child2 = rng.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (child() == child2()) ++same;
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace blot
