#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

#include "util/error.h"

namespace blot::util {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null").is_null());
  EXPECT_TRUE(JsonValue::Parse("true").AsBool());
  EXPECT_FALSE(JsonValue::Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-2.5e2").AsDouble(), -250.0);
  EXPECT_EQ(JsonValue::Parse("42").AsUint64(), 42u);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  const JsonValue root = JsonValue::Parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})");
  ASSERT_TRUE(root.is_object());
  const auto& a = root.At("a").AsArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].AsUint64(), 1u);
  EXPECT_EQ(a[2].At("b").AsString(), "c");
  EXPECT_TRUE(root.At("d").At("e").is_null());
  EXPECT_TRUE(root.At("f").AsBool());
}

TEST(JsonTest, ObjectMembersKeepDocumentOrder) {
  const JsonValue root = JsonValue::Parse(R"({"z": 1, "a": 2})");
  const auto& members = root.AsObject();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
}

TEST(JsonTest, DecodesStringEscapes) {
  const JsonValue v =
      JsonValue::Parse(R"("quote:\" slash:\\ nl:\n tab:\t u:\u0041")");
  EXPECT_EQ(v.AsString(), "quote:\" slash:\\ nl:\n tab:\t u:A");
}

TEST(JsonTest, FindAndFallbackAccessors) {
  const JsonValue root =
      JsonValue::Parse(R"({"n": 7, "s": "x", "d": 1.5})");
  EXPECT_EQ(root.Find("missing"), nullptr);
  ASSERT_NE(root.Find("n"), nullptr);
  EXPECT_EQ(root.Uint64Or("n", 0), 7u);
  EXPECT_EQ(root.Uint64Or("missing", 9), 9u);
  EXPECT_DOUBLE_EQ(root.DoubleOr("d", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(root.DoubleOr("missing", 3.5), 3.5);
  EXPECT_EQ(root.StringOr("s", "fb"), "x");
  EXPECT_EQ(root.StringOr("missing", "fb"), "fb");
}

TEST(JsonTest, MalformedInputThrows) {
  EXPECT_THROW(JsonValue::Parse(""), CorruptData);
  EXPECT_THROW(JsonValue::Parse("{"), CorruptData);
  EXPECT_THROW(JsonValue::Parse("{\"a\": }"), CorruptData);
  EXPECT_THROW(JsonValue::Parse("[1, 2"), CorruptData);
  EXPECT_THROW(JsonValue::Parse("\"unterminated"), CorruptData);
  EXPECT_THROW(JsonValue::Parse("nul"), CorruptData);
  EXPECT_THROW(JsonValue::Parse("{} trailing"), CorruptData);
}

TEST(JsonTest, WrongTypeAccessThrows) {
  const JsonValue v = JsonValue::Parse(R"({"a": "text"})");
  EXPECT_THROW(v.At("a").AsDouble(), CorruptData);
  EXPECT_THROW(v.At("a").AsArray(), CorruptData);
  EXPECT_THROW(v.At("missing"), CorruptData);
  EXPECT_THROW(JsonValue::Parse("-1").AsUint64(), CorruptData);
  EXPECT_THROW(JsonValue::Parse("1.5").AsUint64(), CorruptData);
}

}  // namespace
}  // namespace blot::util
