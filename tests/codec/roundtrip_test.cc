// Parameterized round-trip and robustness tests across all block codecs,
// plus the ratio/effort-ordering property the replica-selection evaluation
// depends on (Table I).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "codec/codec.h"
#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

Bytes RandomBytes(Rng& rng, std::size_t n) {
  Bytes data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextUint64(256));
  return data;
}

Bytes RepetitiveBytes(Rng& rng, std::size_t n) {
  // Concatenation of repeated short phrases: highly compressible.
  const std::string phrases[] = {"taxi-0042,", "31.2304,121.4737,",
                                 "2007-11-0", "occupied,"};
  Bytes data;
  while (data.size() < n) {
    const std::string& p = phrases[rng.NextUint64(4)];
    data.insert(data.end(), p.begin(), p.end());
  }
  data.resize(n);
  return data;
}

// Binary rows resembling encoded GPS records: small deltas, many shared
// byte prefixes.
Bytes RecordLikeBytes(Rng& rng, std::size_t n) {
  Bytes data;
  std::uint32_t time = 1193875200;
  std::uint32_t lat = 31000000, lon = 121000000;
  while (data.size() < n) {
    time += static_cast<std::uint32_t>(rng.NextUint64(60));
    lat += static_cast<std::uint32_t>(rng.NextInt64(-500, 500));
    lon += static_cast<std::uint32_t>(rng.NextInt64(-500, 500));
    for (std::uint32_t v : {time, lat, lon})
      for (int i = 0; i < 4; ++i)
        data.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  data.resize(n);
  return data;
}

class CodecRoundTripTest : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecRoundTripTest, EmptyInput) {
  const Codec& codec = GetCodec(GetParam());
  const Bytes compressed = codec.Compress({});
  EXPECT_TRUE(codec.Decompress(compressed).empty());
}

TEST_P(CodecRoundTripTest, SingleByte) {
  const Codec& codec = GetCodec(GetParam());
  const Bytes input = {0x42};
  EXPECT_EQ(codec.Decompress(codec.Compress(input)), input);
}

TEST_P(CodecRoundTripTest, AllByteValues) {
  const Codec& codec = GetCodec(GetParam());
  Bytes input(256);
  for (std::size_t i = 0; i < 256; ++i)
    input[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(codec.Decompress(codec.Compress(input)), input);
}

TEST_P(CodecRoundTripTest, LongConstantRun) {
  const Codec& codec = GetCodec(GetParam());
  const Bytes input(100000, 0xAA);
  const Bytes compressed = codec.Compress(input);
  EXPECT_EQ(codec.Decompress(compressed), input);
  if (GetParam() != CodecKind::kNone) {
    EXPECT_LT(compressed.size(), input.size() / 10);
  }
}

TEST_P(CodecRoundTripTest, RandomIncompressibleData) {
  Rng rng(101);
  const Codec& codec = GetCodec(GetParam());
  const Bytes input = RandomBytes(rng, 50000);
  const Bytes compressed = codec.Compress(input);
  EXPECT_EQ(codec.Decompress(compressed), input);
  // Random data may expand, but only within a small framing overhead.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 8 + 1024);
}

TEST_P(CodecRoundTripTest, RepetitiveTextCompresses) {
  Rng rng(103);
  const Codec& codec = GetCodec(GetParam());
  const Bytes input = RepetitiveBytes(rng, 80000);
  const Bytes compressed = codec.Compress(input);
  EXPECT_EQ(codec.Decompress(compressed), input);
  if (GetParam() != CodecKind::kNone) {
    EXPECT_LT(compressed.size(), input.size() / 2);
  }
}

TEST_P(CodecRoundTripTest, RecordLikeBinary) {
  Rng rng(107);
  const Codec& codec = GetCodec(GetParam());
  const Bytes input = RecordLikeBytes(rng, 120000);
  EXPECT_EQ(codec.Decompress(codec.Compress(input)), input);
}

TEST_P(CodecRoundTripTest, ManySizesSweep) {
  Rng rng(109);
  const Codec& codec = GetCodec(GetParam());
  for (std::size_t size : {2u, 3u, 7u, 63u, 64u, 65u, 255u, 256u, 257u,
                           4095u, 4096u, 70000u}) {
    const Bytes random = RandomBytes(rng, size);
    EXPECT_EQ(codec.Decompress(codec.Compress(random)), random)
        << "random size " << size;
    const Bytes repetitive = RepetitiveBytes(rng, size);
    EXPECT_EQ(codec.Decompress(codec.Compress(repetitive)), repetitive)
        << "repetitive size " << size;
  }
}

TEST_P(CodecRoundTripTest, TruncatedFrameThrows) {
  Rng rng(113);
  const Codec& codec = GetCodec(GetParam());
  const Bytes input = RepetitiveBytes(rng, 10000);
  Bytes compressed = codec.Compress(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(codec.Decompress(compressed), CorruptData);
}

TEST_P(CodecRoundTripTest, EmptyFrameThrows) {
  const Codec& codec = GetCodec(GetParam());
  EXPECT_THROW(codec.Decompress({}), CorruptData);
}

TEST_P(CodecRoundTripTest, NameRoundTrips) {
  const Codec& codec = GetCodec(GetParam());
  EXPECT_EQ(CodecKindFromName(codec.name()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundTripTest,
    ::testing::Values(CodecKind::kNone, CodecKind::kSnappyLike,
                      CodecKind::kGzipLike, CodecKind::kLzmaLike),
    [](const ::testing::TestParamInfo<CodecKind>& info) {
      return std::string(CodecKindName(info.param));
    });

// The replica-selection evaluation relies on the codecs occupying ordered
// points on the ratio frontier: PLAIN >= SNAPPY >= GZIP >= LZMA in size on
// compressible data (Table I's ordering).
TEST(CodecFrontierTest, RatioOrderingOnRecordLikeData) {
  Rng rng(127);
  const Bytes input = RecordLikeBytes(rng, 400000);
  const std::size_t plain = GetCodec(CodecKind::kNone).Compress(input).size();
  const std::size_t snappy =
      GetCodec(CodecKind::kSnappyLike).Compress(input).size();
  const std::size_t gzip =
      GetCodec(CodecKind::kGzipLike).Compress(input).size();
  const std::size_t lzma =
      GetCodec(CodecKind::kLzmaLike).Compress(input).size();
  EXPECT_GT(plain, snappy);
  EXPECT_GT(snappy, gzip);
  EXPECT_GT(gzip, lzma);
}

TEST(CodecFrontierTest, UnknownNameThrows) {
  EXPECT_THROW(CodecKindFromName("BROTLI"), InvalidArgument);
}

TEST(CodecFrontierTest, AllCodecKindsListsFour) {
  EXPECT_EQ(AllCodecKinds().size(), 4u);
}

}  // namespace
}  // namespace blot
