#include "codec/bitstream.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

TEST(BitstreamTest, SingleBitsRoundTrip) {
  BitWriter w;
  const std::vector<int> bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (int b : bits) w.WriteBits(static_cast<std::uint32_t>(b), 1);
  const Bytes buf = w.Finish();
  EXPECT_EQ(buf.size(), 2u);
  BitReader r(buf);
  for (int b : bits) EXPECT_EQ(r.ReadBit(), static_cast<std::uint32_t>(b));
}

TEST(BitstreamTest, MultiBitValuesRoundTrip) {
  BitWriter w;
  w.WriteBits(0x5, 3);
  w.WriteBits(0xABC, 12);
  w.WriteBits(0xFFFFFFFF, 32);
  w.WriteBits(0, 0);
  w.WriteBits(1, 1);
  const Bytes buf = w.Finish();
  BitReader r(buf);
  EXPECT_EQ(r.ReadBits(3), 0x5u);
  EXPECT_EQ(r.ReadBits(12), 0xABCu);
  EXPECT_EQ(r.ReadBits(32), 0xFFFFFFFFu);
  EXPECT_EQ(r.ReadBits(0), 0u);
  EXPECT_EQ(r.ReadBits(1), 1u);
}

TEST(BitstreamTest, RandomizedRoundTrip) {
  Rng rng(99);
  BitWriter w;
  std::vector<std::pair<std::uint32_t, int>> writes;
  for (int i = 0; i < 2000; ++i) {
    const int count = static_cast<int>(rng.NextUint64(33));
    const std::uint32_t value =
        count == 32 ? static_cast<std::uint32_t>(rng())
                    : static_cast<std::uint32_t>(rng()) & ((1u << count) - 1);
    writes.emplace_back(value, count);
    w.WriteBits(value, count);
  }
  const Bytes buf = w.Finish();
  BitReader r(buf);
  for (const auto& [value, count] : writes)
    EXPECT_EQ(r.ReadBits(count), value);
}

TEST(BitstreamTest, ReadPastEndThrows) {
  BitWriter w;
  w.WriteBits(1, 1);
  const Bytes buf = w.Finish();
  BitReader r(buf);
  r.ReadBits(8);  // padded byte is readable
  EXPECT_THROW(r.ReadBit(), CorruptData);
}

TEST(BitstreamTest, CountValidation) {
  BitWriter w;
  EXPECT_THROW(w.WriteBits(0, 33), InvalidArgument);
  EXPECT_THROW(w.WriteBits(0, -1), InvalidArgument);
  const Bytes buf = {0xFF};
  BitReader r(buf);
  EXPECT_THROW(r.ReadBits(33), InvalidArgument);
}

TEST(BitstreamTest, BitCountTracksProgress) {
  BitWriter w;
  EXPECT_EQ(w.BitCount(), 0u);
  w.WriteBits(0, 5);
  EXPECT_EQ(w.BitCount(), 5u);
  w.WriteBits(0, 5);
  EXPECT_EQ(w.BitCount(), 10u);
}

}  // namespace
}  // namespace blot
