#include "codec/range_coder.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace blot {
namespace {

TEST(RangeCoderTest, SingleAdaptiveBitStream) {
  Rng rng(1);
  std::vector<std::uint32_t> bits;
  for (int i = 0; i < 10000; ++i)
    bits.push_back(rng.NextBool(0.2) ? 1 : 0);

  RangeEncoder enc;
  BitProb p_enc = kProbInit;
  for (std::uint32_t b : bits) enc.EncodeBit(p_enc, b);
  const Bytes buf = enc.Finish();

  RangeDecoder dec(buf);
  BitProb p_dec = kProbInit;
  for (std::uint32_t b : bits) ASSERT_EQ(dec.DecodeBit(p_dec), b);
  EXPECT_EQ(p_enc, p_dec);
}

TEST(RangeCoderTest, SkewedBitsCompressBelowOneBitPerSymbol) {
  Rng rng(2);
  constexpr int kN = 100000;
  RangeEncoder enc;
  BitProb p = kProbInit;
  for (int i = 0; i < kN; ++i)
    enc.EncodeBit(p, rng.NextBool(0.02) ? 1 : 0);
  const Bytes buf = enc.Finish();
  // Entropy of Bernoulli(0.02) is ~0.14 bits; allow generous slack.
  EXPECT_LT(buf.size() * 8, kN / 2);
}

TEST(RangeCoderTest, DirectBitsRoundTrip) {
  Rng rng(3);
  std::vector<std::pair<std::uint32_t, int>> writes;
  RangeEncoder enc;
  for (int i = 0; i < 5000; ++i) {
    const int count = 1 + static_cast<int>(rng.NextUint64(24));
    const std::uint32_t value =
        static_cast<std::uint32_t>(rng()) & ((1u << count) - 1);
    writes.emplace_back(value, count);
    enc.EncodeDirectBits(value, count);
  }
  const Bytes buf = enc.Finish();
  RangeDecoder dec(buf);
  for (const auto& [value, count] : writes)
    ASSERT_EQ(dec.DecodeDirectBits(count), value);
}

TEST(RangeCoderTest, BitTreeRoundTrip) {
  Rng rng(4);
  std::vector<BitProb> enc_probs(256, kProbInit);
  std::vector<BitProb> dec_probs(256, kProbInit);
  std::vector<std::uint32_t> values;
  RangeEncoder enc;
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t v =
        static_cast<std::uint32_t>(rng.NextZipf(256, 1.0));
    values.push_back(v);
    enc.EncodeBitTree(enc_probs, 8, v);
  }
  const Bytes buf = enc.Finish();
  RangeDecoder dec(buf);
  for (std::uint32_t v : values)
    ASSERT_EQ(dec.DecodeBitTree(dec_probs, 8), v);
  EXPECT_EQ(enc_probs, dec_probs);
}

TEST(RangeCoderTest, MixedOperationsRoundTrip) {
  Rng rng(5);
  std::vector<BitProb> enc_tree(64, kProbInit);
  std::vector<BitProb> dec_tree(64, kProbInit);
  BitProb enc_bit = kProbInit, dec_bit = kProbInit;
  struct Op {
    int kind;  // 0 bit, 1 direct, 2 tree
    std::uint32_t value;
  };
  std::vector<Op> ops;
  RangeEncoder enc;
  for (int i = 0; i < 10000; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.NextUint64(3));
    switch (op.kind) {
      case 0:
        op.value = rng.NextBool(0.7) ? 1 : 0;
        enc.EncodeBit(enc_bit, op.value);
        break;
      case 1:
        op.value = static_cast<std::uint32_t>(rng.NextUint64(1u << 16));
        enc.EncodeDirectBits(op.value, 16);
        break;
      default:
        op.value = static_cast<std::uint32_t>(rng.NextUint64(64));
        enc.EncodeBitTree(enc_tree, 6, op.value);
        break;
    }
    ops.push_back(op);
  }
  const Bytes buf = enc.Finish();
  RangeDecoder dec(buf);
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0:
        ASSERT_EQ(dec.DecodeBit(dec_bit), op.value);
        break;
      case 1:
        ASSERT_EQ(dec.DecodeDirectBits(16), op.value);
        break;
      default:
        ASSERT_EQ(dec.DecodeBitTree(dec_tree, 6), op.value);
        break;
    }
  }
}

}  // namespace
}  // namespace blot
