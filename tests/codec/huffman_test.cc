#include "codec/huffman.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

// Kraft sum in units of 2^-kMaxHuffmanBits; a valid prefix code needs
// sum(2^(max-len)) <= 2^max.
std::uint64_t KraftSum(const std::vector<std::uint8_t>& lengths) {
  std::uint64_t sum = 0;
  for (std::uint8_t len : lengths)
    if (len > 0) sum += std::uint64_t{1} << (kMaxHuffmanBits - len);
  return sum;
}

TEST(HuffmanTest, LengthsSatisfyKraftInequality) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freq(286);
    for (auto& f : freq) f = rng.NextUint64(1000);
    const auto lengths = BuildHuffmanCodeLengths(freq);
    EXPECT_LE(KraftSum(lengths),
              std::uint64_t{1} << kMaxHuffmanBits);
    for (std::size_t s = 0; s < freq.size(); ++s) {
      if (freq[s] > 0)
        EXPECT_GT(lengths[s], 0) << "symbol " << s;
      else
        EXPECT_EQ(lengths[s], 0) << "symbol " << s;
    }
  }
}

TEST(HuffmanTest, LengthLimitHoldsUnderExtremeSkew) {
  // Fibonacci-like frequencies drive unconstrained Huffman depths far
  // beyond 15 bits; the builder must cap them.
  std::vector<std::uint64_t> freq(40);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freq) {
    f = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = BuildHuffmanCodeLengths(freq);
  for (std::uint8_t len : lengths) EXPECT_LE(len, kMaxHuffmanBits);
  EXPECT_LE(KraftSum(lengths), std::uint64_t{1} << kMaxHuffmanBits);
}

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> freq(10, 0);
  freq[3] = 7;
  const auto lengths = BuildHuffmanCodeLengths(freq);
  EXPECT_EQ(lengths[3], 1);
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (s != 3) {
      EXPECT_EQ(lengths[s], 0);
    }
  }
}

TEST(HuffmanTest, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freq = {1000, 1, 1, 1, 1, 1, 1, 1};
  const auto lengths = BuildHuffmanCodeLengths(freq);
  for (std::size_t s = 1; s < freq.size(); ++s)
    EXPECT_LE(lengths[0], lengths[s]);
}

TEST(HuffmanTest, EncodeDecodeRoundTrip) {
  Rng rng(2);
  std::vector<std::uint64_t> freq(100);
  for (auto& f : freq) f = 1 + rng.NextUint64(500);
  const auto lengths = BuildHuffmanCodeLengths(freq);
  const HuffmanEncoder encoder(lengths);
  const HuffmanDecoder decoder(lengths);

  std::vector<std::size_t> symbols;
  for (int i = 0; i < 5000; ++i)
    symbols.push_back(rng.NextUint64(freq.size()));
  BitWriter w;
  for (std::size_t s : symbols) encoder.Write(w, s);
  const Bytes buf = w.Finish();
  BitReader r(buf);
  for (std::size_t s : symbols) EXPECT_EQ(decoder.Read(r), s);
}

TEST(HuffmanTest, CodedSizeBeatsFixedWidthOnSkewedData) {
  Rng rng(3);
  // Zipf-ish skew over 64 symbols.
  std::vector<std::size_t> symbols;
  for (int i = 0; i < 20000; ++i) symbols.push_back(rng.NextZipf(64, 1.2));
  std::vector<std::uint64_t> freq(64, 0);
  for (std::size_t s : symbols) freq[s]++;
  const auto lengths = BuildHuffmanCodeLengths(freq);
  const HuffmanEncoder encoder(lengths);
  BitWriter w;
  for (std::size_t s : symbols) encoder.Write(w, s);
  const std::size_t coded_bits = w.BitCount();
  EXPECT_LT(coded_bits, symbols.size() * 6);  // fixed width would be 6 bits
}

TEST(HuffmanTest, DecoderRejectsOversubscribedLengths) {
  // Three symbols of length 1 cannot form a prefix code.
  std::vector<std::uint8_t> lengths = {1, 1, 1};
  EXPECT_THROW(HuffmanDecoder{lengths}, CorruptData);
}

TEST(HuffmanTest, DecoderRejectsTooLongLength) {
  std::vector<std::uint8_t> lengths = {1, 16};
  EXPECT_THROW(HuffmanDecoder{lengths}, CorruptData);
}

TEST(HuffmanTest, AllZeroFrequenciesYieldNoCodes) {
  const auto lengths = BuildHuffmanCodeLengths(std::vector<std::uint64_t>(8));
  for (std::uint8_t len : lengths) EXPECT_EQ(len, 0);
}

}  // namespace
}  // namespace blot
