// Adversarial robustness: decoders fed corrupted frames must either throw
// CorruptData or produce some output — never crash, hang, or read out of
// bounds. Every mutation class is exercised against every codec and both
// record layouts. (Run under ASan/UBSan for full effect; the assertions
// here pin down the no-crash and bounded-output contracts.)
#include <gtest/gtest.h>

#include "blot/layout.h"
#include "codec/codec.h"
#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

Bytes CompressibleInput(Rng& rng, std::size_t n) {
  Bytes data;
  std::uint32_t value = 1193875200;
  while (data.size() < n) {
    value += static_cast<std::uint32_t>(rng.NextUint64(32));
    for (int i = 0; i < 4; ++i)
      data.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  data.resize(n);
  return data;
}

// Applies one random mutation; returns false if the mutation was a no-op.
bool Mutate(Rng& rng, Bytes& frame) {
  if (frame.empty()) return false;
  switch (rng.NextUint64(4)) {
    case 0: {  // bit flip
      const std::size_t i = rng.NextUint64(frame.size());
      frame[i] ^= static_cast<std::uint8_t>(1u << rng.NextUint64(8));
      return true;
    }
    case 1: {  // truncation
      const std::size_t keep = rng.NextUint64(frame.size());
      frame.resize(keep);
      return true;
    }
    case 2: {  // byte overwrite run
      const std::size_t start = rng.NextUint64(frame.size());
      const std::size_t len =
          std::min(frame.size() - start, 1 + rng.NextUint64(16));
      for (std::size_t i = 0; i < len; ++i)
        frame[start + i] = static_cast<std::uint8_t>(rng.NextUint64(256));
      return true;
    }
    default: {  // garbage append
      const std::size_t extra = 1 + rng.NextUint64(16);
      for (std::size_t i = 0; i < extra; ++i)
        frame.push_back(static_cast<std::uint8_t>(rng.NextUint64(256)));
      return true;
    }
  }
}

class CodecFuzzTest : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecFuzzTest, CorruptedFramesNeverCrash) {
  Rng rng(2024);
  const Codec& codec = GetCodec(GetParam());
  const Bytes input = CompressibleInput(rng, 20000);
  const Bytes frame = codec.Compress(input);
  int threw = 0, decoded = 0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    Bytes mutated = frame;
    if (!Mutate(rng, mutated)) continue;
    try {
      const Bytes output = codec.Decompress(mutated);
      ++decoded;
      // Whatever decodes must stay within the declared-size regime: no
      // unbounded growth from a corrupt frame.
      EXPECT_LE(output.size(), input.size() * 4 + 1024);
    } catch (const CorruptData&) {
      ++threw;
    }
  }
  // Most mutations must be detected; some may decode (size field intact,
  // payload altered) — both are acceptable, crashes are not.
  EXPECT_GT(threw, 0);
  EXPECT_EQ(threw + decoded, kTrials);
}

TEST_P(CodecFuzzTest, RandomGarbageInputNeverCrashes) {
  Rng rng(7);
  const Codec& codec = GetCodec(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    Bytes garbage(rng.NextUint64(2000));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.NextUint64(256));
    try {
      const Bytes output = codec.Decompress(garbage);
      EXPECT_LE(output.size(), 1u << 24);
    } catch (const CorruptData&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecFuzzTest,
    ::testing::Values(CodecKind::kNone, CodecKind::kSnappyLike,
                      CodecKind::kGzipLike, CodecKind::kLzmaLike),
    [](const ::testing::TestParamInfo<CodecKind>& info) {
      return std::string(CodecKindName(info.param));
    });

class LayoutFuzzTest : public ::testing::TestWithParam<Layout> {};

TEST_P(LayoutFuzzTest, CorruptedSerializationNeverCrashes) {
  Rng rng(9);
  std::vector<Record> records;
  for (int i = 0; i < 500; ++i) {
    Record r;
    r.oid = static_cast<std::uint32_t>(rng.NextUint64(100));
    r.time = 1193875200 + static_cast<std::int64_t>(rng.NextUint64(86400));
    r.x = rng.NextDouble(120, 122);
    r.y = rng.NextDouble(30, 32);
    records.push_back(r);
  }
  const Bytes frame = SerializeRecords(records, GetParam());
  int threw = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = frame;
    if (!Mutate(rng, mutated)) continue;
    try {
      const auto decoded = DeserializeRecords(mutated, GetParam());
      EXPECT_LE(decoded.size(), records.size() * 4 + 1024);
    } catch (const CorruptData&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0);
}

INSTANTIATE_TEST_SUITE_P(
    BothLayouts, LayoutFuzzTest,
    ::testing::Values(Layout::kRow, Layout::kColumn),
    [](const ::testing::TestParamInfo<Layout>& info) {
      return std::string(LayoutName(info.param));
    });

}  // namespace
}  // namespace blot
