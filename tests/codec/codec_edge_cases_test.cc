// Round-trip edge cases across all 7 encoding schemes (layout x codec):
// empty partitions, single records, attributes at maximum width, and the
// repeated / adversarial coordinates the property-based generator
// produces. Every case also cross-checks the fused decode-filter kernel
// against decode-then-filter, since the two paths share none of their
// deserialization code.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "blot/encoding_scheme.h"
#include "testing/generator.h"
#include "testing/oracle.h"
#include "util/rng.h"

namespace blot {
namespace {

std::vector<Record> RoundTrip(const std::vector<Record>& records,
                              const EncodingScheme& scheme) {
  return DecodePartition(EncodePartition(records, scheme), scheme);
}

class EncodingEdgeCaseTest : public ::testing::TestWithParam<EncodingScheme> {
};

TEST_P(EncodingEdgeCaseTest, EmptyPartition) {
  const Bytes encoded = EncodePartition({}, GetParam());
  EXPECT_TRUE(DecodePartition(encoded, GetParam()).empty());

  std::uint64_t total = 123;
  const std::vector<Record> fused = DecodePartitionInRange(
      encoded, GetParam(), testing::DefaultTestUniverse(), &total);
  EXPECT_TRUE(fused.empty());
  EXPECT_EQ(total, 0u);
}

TEST_P(EncodingEdgeCaseTest, SingleRecord) {
  Record r;
  r.oid = 7;
  r.time = 1193875200;
  r.x = 121.4737;
  r.y = 31.2304;
  r.speed = 33.5f;
  r.heading = 271;
  r.status = 1;
  r.passengers = 2;
  r.fare_cents = 1850;
  EXPECT_EQ(RoundTrip({r}, GetParam()), std::vector<Record>{r});

  // The fused kernel agrees on both the hit and the miss side.
  const Bytes encoded = EncodePartition({{r}}, GetParam());
  std::uint64_t total = 0;
  const STRange hit = STRange::FromBounds(r.x, r.x, r.y, r.y,
                                          static_cast<double>(r.time),
                                          static_cast<double>(r.time));
  EXPECT_EQ(DecodePartitionInRange(encoded, GetParam(), hit, &total),
            std::vector<Record>{r});
  EXPECT_EQ(total, 1u);
  const STRange miss = STRange::FromBounds(0, 1, 0, 1, 0, 1);
  EXPECT_TRUE(DecodePartitionInRange(encoded, GetParam(), miss).empty());
}

TEST_P(EncodingEdgeCaseTest, MaxAttributeWidth) {
  // Every field at the extreme of its width, alternating with all-zero
  // records so delta codes see the largest possible jumps (the column
  // layout's deltas wrap modulo 2^64 and its double columns must fall
  // back to bit-exact XOR coding).
  Record max;
  max.oid = std::numeric_limits<std::uint32_t>::max();
  max.time = std::numeric_limits<std::int64_t>::max();
  max.x = std::numeric_limits<double>::max();
  max.y = -std::numeric_limits<double>::max();
  max.speed = std::numeric_limits<float>::max();
  max.heading = 359;
  max.status = std::numeric_limits<std::uint8_t>::max();
  max.passengers = std::numeric_limits<std::uint8_t>::max();
  max.fare_cents = std::numeric_limits<std::uint32_t>::max();

  Record min;
  min.time = std::numeric_limits<std::int64_t>::min();
  min.x = std::numeric_limits<double>::denorm_min();
  min.y = -0.0;
  min.speed = -std::numeric_limits<float>::max();

  const std::vector<Record> records = {max, min, max, Record{}, min};
  EXPECT_EQ(RoundTrip(records, GetParam()), records);
}

TEST_P(EncodingEdgeCaseTest, RepeatedCoordinates) {
  // One position repeated across the whole partition: zero deltas and
  // maximal run lengths, with attributes varying so rows stay distinct.
  std::vector<Record> records;
  for (std::uint32_t i = 0; i < 200; ++i) {
    Record r;
    r.oid = i % 3;
    r.time = 1000000;
    r.x = 17.25;  // exactly representable
    r.y = -4.5;
    r.fare_cents = i;
    records.push_back(r);
  }
  EXPECT_EQ(RoundTrip(records, GetParam()), records);
}

TEST_P(EncodingEdgeCaseTest, AdversarialGeneratedPartitions) {
  // Generator-produced partitions: coordinate collisions, boundary-exact
  // positions and extreme attribute values. Exact order-preserving
  // round-trip, and the fused kernel must agree with decode-then-filter
  // for the degenerate query shapes.
  const STRange universe = testing::DefaultTestUniverse();
  testing::DatasetProfile profile;
  profile.min_records = 1;
  profile.max_records = 200;
  profile.duplicate_fraction = 0.4;
  profile.boundary_fraction = 0.3;
  profile.extreme_fraction = 0.2;

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 7919);
    const Dataset dataset = testing::GenerateDataset(rng, universe, profile);
    const std::vector<Record>& records = dataset.records();
    const Bytes encoded = EncodePartition(records, GetParam());
    EXPECT_EQ(DecodePartition(encoded, GetParam()), records)
        << "seed " << seed;

    const std::vector<STRange> queries =
        testing::GenerateQueries(rng, 8, universe, dataset);
    for (const STRange& query : queries) {
      std::vector<Record> filtered;
      for (const Record& r : records)
        if (query.Contains(r.Position())) filtered.push_back(r);
      std::uint64_t total = 0;
      EXPECT_EQ(DecodePartitionInRange(encoded, GetParam(), query, &total),
                filtered)
          << "seed " << seed;
      EXPECT_EQ(total, records.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, EncodingEdgeCaseTest,
    ::testing::ValuesIn(AllEncodingSchemes()),
    [](const ::testing::TestParamInfo<EncodingScheme>& info) {
      std::string name = info.param.Name();
      for (char& c : name)
        if (c == '-' || c == '/') c = '_';
      return name;
    });

}  // namespace
}  // namespace blot
