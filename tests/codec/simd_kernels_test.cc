// Engine-equivalence and edge-case tests for the vectorized scan
// kernels. Every compiled-in engine must produce bit-identical output
// and identical error behavior to the scalar reference on the same
// bytes — that is the contract that lets DetectScanEngine pick freely.
#include "codec/simd/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "codec/columnar.h"
#include "codec/simd/dispatch.h"
#include "util/bytes.h"
#include "util/error.h"

namespace blot::simd {
namespace {

std::vector<ScanEngine> CompiledEngines() {
  std::vector<ScanEngine> engines{ScanEngine::kScalar};
  if (ScanEngineCompiledIn(ScanEngine::kSse42))
    engines.push_back(ScanEngine::kSse42);
  if (ScanEngineCompiledIn(ScanEngine::kAvx2))
    engines.push_back(ScanEngine::kAvx2);
  return engines;
}

Bytes EncodeDelta(const std::vector<std::int64_t>& values) {
  ByteWriter out;
  EncodeDeltaColumn(out, values);
  return out.Take();
}

// Checks all compiled-in engines against the values the column was
// encoded from, and against each other's consumed-byte counts.
void ExpectDeltaDecodes(const std::vector<std::int64_t>& values) {
  const Bytes data = EncodeDelta(values);
  const std::uint8_t* p = data.data();
  const std::uint8_t* end = p + data.size();
  for (const ScanEngine engine : CompiledEngines()) {
    std::vector<std::int64_t> out(values.size());
    const std::size_t used =
        DecodeZigZagDeltaI64(engine, p, end, out.data(), out.size());
    EXPECT_EQ(used, data.size()) << ScanEngineName(engine);
    EXPECT_EQ(out, values) << ScanEngineName(engine);
  }
}

TEST(SimdDeltaDecodeTest, AllEnginesMatchEncoderInverse) {
  // Dense single-byte deltas: the vector fast path end to end.
  std::vector<std::int64_t> dense;
  for (int i = 0; i < 1000; ++i) dense.push_back(i * 3 - (i % 7));
  ExpectDeltaDecodes(dense);

  // Large jumps force multi-byte varints on every value.
  std::vector<std::int64_t> sparse;
  std::int64_t v = 0;
  for (int i = 0; i < 300; ++i) {
    v += (i % 2 ? 1 : -1) * (std::int64_t(1) << (i % 50));
    sparse.push_back(v);
  }
  ExpectDeltaDecodes(sparse);
}

TEST(SimdDeltaDecodeTest, MixedRunsCrossTheSixteenByteFastPath) {
  // Alternate long single-byte runs with multi-byte spikes so the
  // vector flavors repeatedly enter and exit the 16-byte fast path at
  // every offset mod 16.
  std::mt19937_64 rng(42);
  std::vector<std::int64_t> values;
  std::int64_t v = 0;
  for (int run = 0; run < 40; ++run) {
    const std::size_t len = 1 + rng() % 37;
    for (std::size_t i = 0; i < len; ++i) {
      v += std::int64_t(rng() % 64) - 31;  // one-byte zig-zag deltas
      values.push_back(v);
    }
    v += std::int64_t(rng()) % (std::int64_t(1) << 40);  // spike
    values.push_back(v);
  }
  ExpectDeltaDecodes(values);
}

TEST(SimdDeltaDecodeTest, ExtremeValuesRoundTrip) {
  ExpectDeltaDecodes({std::numeric_limits<std::int64_t>::max(),
                      std::numeric_limits<std::int64_t>::min(), 0, -1, 1,
                      std::numeric_limits<std::int64_t>::min()});
}

TEST(SimdDeltaDecodeTest, CountsOfEveryResidueMod16) {
  // The fast path handles 16 values per step; make sure every leftover
  // length through the scalar tail is exercised.
  for (std::size_t n = 0; n <= 48; ++n) {
    std::vector<std::int64_t> values;
    for (std::size_t i = 0; i < n; ++i) values.push_back(std::int64_t(i) * 5);
    ExpectDeltaDecodes(values);
  }
}

TEST(SimdDeltaDecodeTest, TruncatedInputThrows) {
  std::vector<std::int64_t> values;
  for (int i = 0; i < 64; ++i) values.push_back(i * 1000003);  // multi-byte
  const Bytes data = EncodeDelta(values);
  for (const ScanEngine engine : CompiledEngines()) {
    for (const std::size_t cut : {std::size_t(0), std::size_t(1),
                                  data.size() / 2, data.size() - 1}) {
      std::vector<std::int64_t> out(values.size());
      EXPECT_THROW(DecodeZigZagDeltaI64(engine, data.data(),
                                        data.data() + cut, out.data(),
                                        out.size()),
                   CorruptData)
          << ScanEngineName(engine) << " cut=" << cut;
    }
  }
}

TEST(SimdDeltaDecodeTest, VarintOverflowThrows) {
  // Eleven continuation bytes: shift reaches 70 before termination.
  const std::vector<std::uint8_t> bad(11, 0x80);
  for (const ScanEngine engine : CompiledEngines()) {
    std::int64_t out = 0;
    EXPECT_THROW(DecodeZigZagDeltaI64(engine, bad.data(),
                                      bad.data() + bad.size(), &out, 1),
                 CorruptData)
        << ScanEngineName(engine);
  }
}

TEST(SimdDeltaDecodeTest, MaxLengthVarintDecodes) {
  // 10-byte varint carrying all 64 bits: zig-zag of UINT64_MAX is
  // int64 min.
  std::vector<std::uint8_t> max10(10, 0xFF);
  max10[9] = 0x01;
  for (const ScanEngine engine : CompiledEngines()) {
    std::int64_t out = 0;
    const std::size_t used = DecodeZigZagDeltaI64(
        engine, max10.data(), max10.data() + max10.size(), &out, 1);
    EXPECT_EQ(used, 10u) << ScanEngineName(engine);
    EXPECT_EQ(out, std::numeric_limits<std::int64_t>::min())
        << ScanEngineName(engine);
  }
}

TEST(SimdXorDecodeTest, AllEnginesMatchEncoderInverse) {
  std::mt19937_64 rng(7);
  std::vector<double> values;
  double x = 121.47;
  for (int i = 0; i < 777; ++i) {
    x += double(rng() % 1000) * 1e-6 - 5e-4;
    values.push_back(x);
  }
  values.push_back(std::numeric_limits<double>::quiet_NaN());
  values.push_back(-std::numeric_limits<double>::infinity());
  ByteWriter enc;
  EncodeXorColumn(enc, values);
  const Bytes data = enc.buffer();
  for (const ScanEngine engine : CompiledEngines()) {
    std::vector<double> out(values.size());
    const std::size_t used = DecodeXorF64(engine, data.data(),
                                          data.data() + data.size(),
                                          out.data(), out.size());
    EXPECT_EQ(used, data.size()) << ScanEngineName(engine);
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (std::isnan(values[i]))
        EXPECT_TRUE(std::isnan(out[i])) << ScanEngineName(engine);
      else
        EXPECT_EQ(out[i], values[i]) << ScanEngineName(engine) << " i=" << i;
    }
  }
}

TEST(SimdRleDecodeTest, AllEnginesMatchEncoderInverse) {
  std::vector<std::uint8_t> values;
  for (int run = 0; run < 30; ++run)
    values.insert(values.end(), 1 + (run * 13) % 200,
                  std::uint8_t(run % 5));
  ByteWriter enc;
  EncodeRleColumn(enc, values);
  const Bytes data = enc.buffer();
  for (const ScanEngine engine : CompiledEngines()) {
    std::vector<std::uint8_t> out(values.size());
    const std::size_t used =
        DecodeRleU8(engine, data.data(), data.data() + data.size(),
                    out.data(), out.size());
    EXPECT_EQ(used, data.size()) << ScanEngineName(engine);
    EXPECT_EQ(out, values) << ScanEngineName(engine);
  }
}

TEST(SimdRleDecodeTest, OverlongRunThrows) {
  // A run longer than the requested count must throw, not overflow out.
  ByteWriter enc;
  EncodeRleColumn(enc, std::vector<std::uint8_t>(10, 3));
  const Bytes data = enc.buffer();
  for (const ScanEngine engine : CompiledEngines()) {
    std::vector<std::uint8_t> out(4);
    EXPECT_THROW(DecodeRleU8(engine, data.data(),
                             data.data() + data.size(), out.data(), 4),
                 CorruptData)
        << ScanEngineName(engine);
  }
}

TEST(SimdF32DecodeTest, AllEnginesMatchEncoderInverse) {
  std::vector<float> values;
  for (int i = 0; i < 333; ++i) values.push_back(float(i) * 0.37f - 11.0f);
  ByteWriter enc;
  EncodeF32Column(enc, values);
  const Bytes data = enc.buffer();
  for (const ScanEngine engine : CompiledEngines()) {
    std::vector<float> out(values.size());
    const std::size_t used = DecodeF32(engine, data.data(),
                                       data.data() + data.size(), out.data(),
                                       out.size());
    EXPECT_EQ(used, data.size()) << ScanEngineName(engine);
    EXPECT_EQ(out, values) << ScanEngineName(engine);
  }
}

struct FilterCase {
  std::vector<double> xs, ys, ts;
  double bounds[6];
};

FilterCase MakeFilterCase(std::size_t count, std::uint64_t seed) {
  FilterCase c;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  for (std::size_t i = 0; i < count; ++i) {
    c.xs.push_back(dist(rng));
    c.ys.push_back(dist(rng));
    c.ts.push_back(dist(rng));
  }
  const double b[6] = {20.0, 80.0, 10.0, 90.0, 5.0, 55.0};
  std::copy(b, b + 6, c.bounds);
  return c;
}

std::size_t ReferenceFilter(const FilterCase& c, std::vector<bool>* hits) {
  std::size_t matched = 0;
  hits->assign(c.xs.size(), false);
  for (std::size_t i = 0; i < c.xs.size(); ++i) {
    const bool hit = c.xs[i] >= c.bounds[0] && c.xs[i] <= c.bounds[1] &&
                     c.ys[i] >= c.bounds[2] && c.ys[i] <= c.bounds[3] &&
                     c.ts[i] >= c.bounds[4] && c.ts[i] <= c.bounds[5];
    (*hits)[i] = hit;
    matched += hit;
  }
  return matched;
}

void ExpectFilterMatchesReference(const FilterCase& c) {
  std::vector<bool> expected_hits;
  const std::size_t expected = ReferenceFilter(c, &expected_hits);
  const std::size_t words = (c.xs.size() + 63) / 64;
  for (const ScanEngine engine : CompiledEngines()) {
    // Poisoned bitmap: the kernel must zero every word it owns.
    std::vector<std::uint64_t> bitmap(words == 0 ? 1 : words, ~0ull);
    const std::size_t matched =
        FilterRangeBitmap(engine, c.xs.data(), c.ys.data(), c.ts.data(),
                          c.xs.size(), c.bounds, bitmap.data());
    EXPECT_EQ(matched, expected) << ScanEngineName(engine);
    for (std::size_t i = 0; i < c.xs.size(); ++i) {
      EXPECT_EQ((bitmap[i / 64] >> (i % 64)) & 1, expected_hits[i] ? 1u : 0u)
          << ScanEngineName(engine) << " bit " << i;
    }
    // No stray bits past count in the last word.
    if (c.xs.size() % 64 != 0 && words > 0) {
      EXPECT_EQ(bitmap[words - 1] >> (c.xs.size() % 64), 0ull)
          << ScanEngineName(engine);
    }
  }
}

TEST(SimdFilterRangeTest, MatchesScalarReferenceAtBoundaryCounts) {
  // 16 and 64 are the vector-step and bitmap-word boundaries; the odd
  // counts exercise the scalar tail and partial final words.
  for (const std::size_t count : {std::size_t(0), std::size_t(1),
                                  std::size_t(15), std::size_t(16),
                                  std::size_t(17), std::size_t(63),
                                  std::size_t(64), std::size_t(65),
                                  std::size_t(100), std::size_t(512),
                                  std::size_t(1000)}) {
    ExpectFilterMatchesReference(MakeFilterCase(count, 1000 + count));
  }
}

TEST(SimdFilterRangeTest, BoundaryValuesAreInclusive) {
  FilterCase c;
  c.xs = {20.0, 80.0, 19.999999, 80.000001};
  c.ys = {10.0, 90.0, 10.0, 90.0};
  c.ts = {5.0, 55.0, 5.0, 55.0};
  const double b[6] = {20.0, 80.0, 10.0, 90.0, 5.0, 55.0};
  std::copy(b, b + 6, c.bounds);
  ExpectFilterMatchesReference(c);
  std::vector<bool> hits;
  EXPECT_EQ(ReferenceFilter(c, &hits), 2u);  // closed bounds keep 20 and 80
}

TEST(SimdFilterRangeTest, NanCoordinatesNeverMatch) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  FilterCase c;
  for (int i = 0; i < 70; ++i) {
    c.xs.push_back(i % 3 == 0 ? nan : 50.0);
    c.ys.push_back(i % 5 == 1 ? nan : 50.0);
    c.ts.push_back(i % 7 == 2 ? nan : 30.0);
  }
  const double b[6] = {0.0, 100.0, 0.0, 100.0, 0.0, 100.0};
  std::copy(b, b + 6, c.bounds);
  ExpectFilterMatchesReference(c);
}

TEST(SimdFilterRangeTest, InvertedBoundsMatchNothing) {
  // The empty STRange is encoded as (+inf, -inf) bounds; every engine
  // must return zero matches and an all-zero bitmap.
  FilterCase c = MakeFilterCase(130, 9);
  const double inf = std::numeric_limits<double>::infinity();
  const double b[6] = {inf, -inf, inf, -inf, inf, -inf};
  std::copy(b, b + 6, c.bounds);
  std::vector<bool> hits;
  EXPECT_EQ(ReferenceFilter(c, &hits), 0u);
  ExpectFilterMatchesReference(c);
}

TEST(SimdDispatchTest, DetectionIsCompiledInAndInstallable) {
  const ScanEngine detected = DetectScanEngine();
  EXPECT_TRUE(ScanEngineCompiledIn(detected));
  const ScanEngine prev = ActiveScanEngine();
  // Installing the scalar engine always succeeds; restoring the prior
  // engine must round-trip.
  EXPECT_EQ(SetScanEngine(ScanEngine::kScalar), ScanEngine::kScalar);
  EXPECT_EQ(ActiveScanEngine(), ScanEngine::kScalar);
  EXPECT_EQ(SetScanEngine(prev), prev);
  EXPECT_EQ(ActiveScanEngine(), prev);
}

TEST(SimdDispatchTest, EngineNamesAreStable) {
  // These strings are metric label values; renaming breaks dashboards.
  EXPECT_EQ(ScanEngineName(ScanEngine::kScalar), "scalar");
  EXPECT_EQ(ScanEngineName(ScanEngine::kSse42), "sse4.2");
  EXPECT_EQ(ScanEngineName(ScanEngine::kAvx2), "avx2");
}

}  // namespace
}  // namespace blot::simd
