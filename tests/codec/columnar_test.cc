#include "codec/columnar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace blot {
namespace {

TEST(DeltaColumnTest, RoundTripMonotonicTimestamps) {
  Rng rng(1);
  std::vector<std::int64_t> times;
  std::int64_t t = 1193875200;
  for (int i = 0; i < 10000; ++i) {
    t += rng.NextInt64(0, 120);
    times.push_back(t);
  }
  ByteWriter w;
  EncodeDeltaColumn(w, times);
  const Bytes buf = w.Take();
  // Monotonic small deltas should use ~1-2 bytes per value, far below the
  // 8 bytes of raw storage.
  EXPECT_LT(buf.size(), times.size() * 3);
  ByteReader r(buf);
  EXPECT_EQ(DecodeDeltaColumn(r, times.size()), times);
}

TEST(DeltaColumnTest, RoundTripExtremeValues) {
  const std::vector<std::int64_t> values = {
      0, std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(), -1, 1, 0};
  ByteWriter w;
  EncodeDeltaColumn(w, values);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(DecodeDeltaColumn(r, values.size()), values);
}

TEST(DeltaColumnTest, EmptyColumn) {
  ByteWriter w;
  EncodeDeltaColumn(w, {});
  const Bytes buf = w.Take();
  EXPECT_TRUE(buf.empty());
  ByteReader r(buf);
  EXPECT_TRUE(DecodeDeltaColumn(r, 0).empty());
}

TEST(RleColumnTest, RoundTripLowCardinality) {
  Rng rng(2);
  std::vector<std::uint8_t> values;
  while (values.size() < 5000) {
    const std::uint8_t v = static_cast<std::uint8_t>(rng.NextUint64(3));
    const std::size_t run = 1 + rng.NextUint64(200);
    values.insert(values.end(), run, v);
  }
  ByteWriter w;
  EncodeRleColumn(w, values);
  const Bytes buf = w.Take();
  EXPECT_LT(buf.size(), values.size() / 10);
  ByteReader r(buf);
  EXPECT_EQ(DecodeRleColumn(r, values.size()), values);
}

TEST(RleColumnTest, WorstCaseAlternating) {
  std::vector<std::uint8_t> values;
  for (int i = 0; i < 1000; ++i)
    values.push_back(static_cast<std::uint8_t>(i & 1));
  ByteWriter w;
  EncodeRleColumn(w, values);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(DecodeRleColumn(r, values.size()), values);
}

TEST(RleColumnTest, RunOverflowingCountThrows) {
  ByteWriter w;
  w.PutU8(7);
  w.PutVarint(10);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  EXPECT_THROW(DecodeRleColumn(r, 5), CorruptData);
}

TEST(QuantizedColumnTest, RoundTripWithinHalfScale) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextDouble(120, 122));
  const double scale = 1e-6;
  ByteWriter w;
  EncodeQuantizedColumn(w, values, scale);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  const auto decoded = DecodeQuantizedColumn(r, values.size(), scale);
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(decoded[i], values[i], scale / 2 + 1e-12);
}

TEST(QuantizedColumnTest, NearbyValuesAreCompact) {
  // A taxi trajectory: consecutive positions differ by ~1e-4 degrees.
  std::vector<double> values;
  double x = 121.4737;
  for (int i = 0; i < 10000; ++i) {
    x += 1e-4;
    values.push_back(x);
  }
  ByteWriter w;
  EncodeQuantizedColumn(w, values, 1e-6);
  EXPECT_LT(w.size(), values.size() * 3);
}

TEST(QuantizedColumnTest, RejectsBadScale) {
  ByteWriter w;
  EXPECT_THROW(EncodeQuantizedColumn(w, {}, 0.0), InvalidArgument);
  const Bytes buf;
  ByteReader r(buf);
  EXPECT_THROW(DecodeQuantizedColumn(r, 0, -1.0), InvalidArgument);
}

TEST(XorColumnTest, LosslessRoundTripIncludingSpecials) {
  std::vector<double> values = {0.0, -0.0, 1.5, -2.25,
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::denorm_min(),
                                121.473700001};
  ByteWriter w;
  EncodeXorColumn(w, values);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  const auto decoded = DecodeXorColumn(r, values.size());
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded[i]),
              std::bit_cast<std::uint64_t>(values[i]));
  }
}

TEST(XorColumnTest, IdenticalValuesAreOneBytePerEntry) {
  const std::vector<double> values(1000, 121.4737);
  ByteWriter w;
  EncodeXorColumn(w, values);
  // First value costs up to 10 varint bytes; repeats XOR to zero = 1 byte.
  EXPECT_LE(w.size(), 1010u);
}

TEST(AdaptiveDoubleColumnTest, QuantizedPathRoundTripsGpsData) {
  // Values produced like the taxi generator: exact multiples of 1e-6 (in
  // the round-then-divide sense), which should take the compact path.
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i)
    values.push_back(std::round((121.4 + i * 1e-4) * 1e6) / 1e6);
  ByteWriter w;
  EncodeAdaptiveDoubleColumn(w, values);
  const Bytes buf = w.Take();
  EXPECT_LT(buf.size(), values.size() * 3);  // far below 8 B/value
  ByteReader r(buf);
  const auto decoded = DecodeAdaptiveDoubleColumn(r, values.size());
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded[i]),
              std::bit_cast<std::uint64_t>(values[i]));
}

TEST(AdaptiveDoubleColumnTest, XorFallbackForArbitraryDoubles) {
  Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i)
    values.push_back(rng.NextGaussian() * 1e-9);  // not 1e-6 multiples
  values.push_back(std::numeric_limits<double>::infinity());
  values.push_back(0.1 + 0.2);
  ByteWriter w;
  EncodeAdaptiveDoubleColumn(w, values);
  const Bytes buf = w.Take();
  ByteReader r(buf);
  const auto decoded = DecodeAdaptiveDoubleColumn(r, values.size());
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded[i]),
              std::bit_cast<std::uint64_t>(values[i]));
}

TEST(AdaptiveDoubleColumnTest, EmptyColumnTakesQuantizedPath) {
  ByteWriter w;
  EncodeAdaptiveDoubleColumn(w, {});
  const Bytes buf = w.Take();
  ByteReader r(buf);
  EXPECT_TRUE(DecodeAdaptiveDoubleColumn(r, 0).empty());
}

TEST(F32ColumnTest, RoundTrip) {
  Rng rng(4);
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i)
    values.push_back(static_cast<float>(rng.NextDouble(0, 120)));
  ByteWriter w;
  EncodeF32Column(w, values);
  const Bytes buf = w.Take();
  EXPECT_EQ(buf.size(), values.size() * 4);
  ByteReader r(buf);
  EXPECT_EQ(DecodeF32Column(r, values.size()), values);
}

}  // namespace
}  // namespace blot
