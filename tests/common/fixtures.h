// Shared fixtures for the gtest suites: the canonical record order, the
// small deterministic taxi-fleet dataset, the standard diverse-replica
// store, honest corruption helpers and scoped guards for process-global
// state. Test binaries link blot_test_fixtures and include this via
//   #include "common/fixtures.h"
// (the tests/ directory is on every test target's include path).
#ifndef BLOT_TESTS_COMMON_FIXTURES_H_
#define BLOT_TESTS_COMMON_FIXTURES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "blot/dataset.h"
#include "blot/record.h"
#include "core/store.h"
#include "util/range.h"

namespace blot::test {

// Sorted copy under the canonical total order over every record field
// (delegates to the testing oracle's order), so equal multisets compare
// equal regardless of the order partitions returned them in.
std::vector<Record> Sorted(std::vector<Record> records);

// The small deterministic taxi fleet most suites build by hand: 10
// taxis x 300 samples unless overridden. Same seed, same dataset.
struct TaxiFixture {
  Dataset dataset;
  STRange universe;

  explicit TaxiFixture(std::size_t taxis = 10, std::size_t samples = 300);
};

// A query covering `fraction` of each dimension, centered on the
// universe centroid.
STRange CentroidQuery(const STRange& universe, double fraction);

// The standard diverse-replica store used by the failover and routing
// suites: up to three replicas with distinct partitionings and
// encodings (ROW-SNAPPY / COL-GZIP / ROW-GZIP).
BlotStore MakeStandardStore(const Dataset& dataset, const STRange& universe,
                            std::size_t replicas = 2);

// Corrupts every non-empty partition of `replica` the query needs,
// through the honest path (MutablePartition re-arms checksum
// verification and invalidates cached decodes). Returns the partitions
// actually corrupted.
std::vector<std::size_t> CorruptInvolved(BlotStore& store,
                                         std::size_t replica,
                                         const STRange& query);

// Scopes a configuration of the process-wide decoded-partition cache;
// restores the disabled default (budget 0, stats reset) on destruction
// so no other test in the binary observes it.
struct GlobalCacheGuard {
  explicit GlobalCacheGuard(std::uint64_t budget);
  ~GlobalCacheGuard();

  GlobalCacheGuard(const GlobalCacheGuard&) = delete;
  GlobalCacheGuard& operator=(const GlobalCacheGuard&) = delete;
};

}  // namespace blot::test

#endif  // BLOT_TESTS_COMMON_FIXTURES_H_
