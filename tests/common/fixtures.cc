#include "common/fixtures.h"

#include "core/partition_cache.h"
#include "gen/taxi_generator.h"
#include "testing/oracle.h"

namespace blot::test {

std::vector<Record> Sorted(std::vector<Record> records) {
  return testing::Canonical(std::move(records));
}

TaxiFixture::TaxiFixture(std::size_t taxis, std::size_t samples) {
  TaxiFleetConfig config;
  config.num_taxis = taxis;
  config.samples_per_taxi = samples;
  dataset = GenerateTaxiFleet(config);
  universe = config.Universe();
}

STRange CentroidQuery(const STRange& universe, double fraction) {
  return STRange::FromCentroid(
      {universe.Width() * fraction, universe.Height() * fraction,
       universe.Duration() * fraction},
      universe.Centroid());
}

BlotStore MakeStandardStore(const Dataset& dataset, const STRange& universe,
                            std::size_t replicas) {
  BlotStore store(Dataset(dataset), universe);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-SNAPPY")});
  if (replicas >= 2)
    store.AddReplica({{.spatial_partitions = 16, .temporal_partitions = 8},
                      EncodingScheme::FromName("COL-GZIP")});
  if (replicas >= 3)
    store.AddReplica({{.spatial_partitions = 8, .temporal_partitions = 4},
                      EncodingScheme::FromName("ROW-GZIP")});
  return store;
}

std::vector<std::size_t> CorruptInvolved(BlotStore& store,
                                         std::size_t replica,
                                         const STRange& query) {
  std::vector<std::size_t> corrupted;
  for (const std::size_t p :
       store.replica(replica).index().InvolvedPartitions(query)) {
    StoredPartition& unit = store.mutable_replica(replica).MutablePartition(p);
    if (unit.data.empty()) continue;
    unit.data[unit.data.size() / 2] ^= 0xFF;
    corrupted.push_back(p);
  }
  return corrupted;
}

GlobalCacheGuard::GlobalCacheGuard(std::uint64_t budget) {
  PartitionCache::Global().Configure(budget);
  PartitionCache::Global().ResetStats();
}

GlobalCacheGuard::~GlobalCacheGuard() {
  PartitionCache::Global().Configure(0);
  PartitionCache::Global().ResetStats();
}

}  // namespace blot::test
