#include "tools/flags.h"

#include <gtest/gtest.h>

namespace blot::tools {
namespace {

Flags Parse(std::vector<std::string> args,
            const std::set<std::string>& allowed) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("blotctl"));
  argv.push_back(const_cast<char*>("cmd"));
  for (std::string& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data(), 2, allowed);
}

TEST(FlagsTest, ParsesTypedValues) {
  const Flags flags =
      Parse({"--name", "fleet", "--count", "42", "--ratio", "0.5"},
            {"name", "count", "ratio"});
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name"), "fleet");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.5);
}

TEST(FlagsTest, EqualsFormParsesLikeSpaceForm) {
  // blotfuzz repro lines use --flag=value; values may themselves
  // contain '=' (fault specs like p=0.5;kinds=bitflip).
  const Flags flags =
      Parse({"--name=fleet", "--count=42", "--spec=p=0.5;kinds=bitflip"},
            {"name", "count", "spec"});
  EXPECT_EQ(flags.GetString("name"), "fleet");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_EQ(flags.GetString("spec"), "p=0.5;kinds=bitflip");
}

TEST(FlagsTest, GetUint64CoversTheFullSeedRange) {
  // IterationSeed() yields uniform 64-bit values, so repro lines
  // routinely carry seeds above INT64_MAX; GetUint64 must round-trip
  // them where GetInt's stoll would throw out_of_range.
  const Flags flags =
      Parse({"--seed=11064657849904403925", "--max=18446744073709551615"},
            {"seed", "max"});
  EXPECT_EQ(flags.GetUint64("seed"), 11064657849904403925ull);
  EXPECT_EQ(flags.GetUint64("max"), 18446744073709551615ull);
  EXPECT_EQ(flags.GetUint64("absent", 7u), 7u);
}

TEST(FlagsTest, BadNumericValuesAreUsageErrorsNotTerminate) {
  const Flags flags = Parse({"--seed=abc", "--neg=-1", "--huge",
                             "99999999999999999999999999", "--ratio=xyz"},
                            {"seed", "neg", "huge", "ratio"});
  EXPECT_THROW(flags.GetUint64("seed"), InvalidArgument);
  EXPECT_THROW(flags.GetUint64("neg"), InvalidArgument);  // stoull would wrap
  EXPECT_THROW(flags.GetUint64("huge"), InvalidArgument);
  EXPECT_THROW(flags.GetInt("huge"), InvalidArgument);
  EXPECT_THROW(flags.GetInt("seed"), InvalidArgument);
  EXPECT_THROW(flags.GetDouble("ratio"), InvalidArgument);
}

TEST(FlagsTest, FallbacksApplyOnlyWhenMissing) {
  const Flags flags = Parse({"--count", "7"}, {"count", "other"});
  EXPECT_EQ(flags.GetInt("count", 99), 7);
  EXPECT_EQ(flags.GetInt("other", 99), 99);
  EXPECT_EQ(flags.GetString("other", "x"), "x");
  EXPECT_DOUBLE_EQ(flags.GetDouble("other", 1.5), 1.5);
}

TEST(FlagsTest, MissingRequiredFlagThrows) {
  const Flags flags = Parse({}, {"needed"});
  EXPECT_THROW(flags.GetString("needed"), InvalidArgument);
  EXPECT_THROW(flags.GetInt("needed"), InvalidArgument);
  EXPECT_THROW(flags.GetDouble("needed"), InvalidArgument);
}

TEST(FlagsTest, UnknownFlagRejected) {
  EXPECT_THROW(Parse({"--typo", "x"}, {"name"}), InvalidArgument);
}

TEST(FlagsTest, FlagWithoutValueRejected) {
  EXPECT_THROW(Parse({"--name"}, {"name"}), InvalidArgument);
}

TEST(FlagsTest, BarePositionalRejected) {
  EXPECT_THROW(Parse({"oops"}, {"name"}), InvalidArgument);
}

TEST(SplitDoublesTest, ParsesLists) {
  EXPECT_EQ(SplitDoubles("1,2.5,-3"), (std::vector<double>{1, 2.5, -3}));
  EXPECT_EQ(SplitDoubles("42"), (std::vector<double>{42}));
  EXPECT_THROW(SplitDoubles("1,,2"), InvalidArgument);
  EXPECT_THROW(SplitDoubles(""), InvalidArgument);
}

}  // namespace
}  // namespace blot::tools
