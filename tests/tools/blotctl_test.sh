#!/usr/bin/env bash
# End-to-end exercise of the blotctl CLI: generate -> build (uniform +
# hybrid) -> info -> query -> aggregate -> trajectory -> recover ->
# advise, plus error-path checks. Usage: blotctl_test.sh <path-to-blotctl>
set -u
BLOTCTL="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

"$BLOTCTL" generate --out fleet.bin --taxis 15 --samples 200 \
    || fail "generate"
[ -s fleet.bin ] || fail "dataset file missing"

"$BLOTCTL" generate --out fleet.csv --taxis 5 --samples 50 --format csv \
    || fail "generate csv"
head -1 fleet.csv | grep -q "oid,time" || fail "csv header"

"$BLOTCTL" build --data fleet.bin --out rep_a --scheme KD8xT4/COL-GZIP \
    || fail "build a"
"$BLOTCTL" build --data fleet.bin --out rep_b \
    --scheme KD4xT4/ROW-SNAPPY --hybrid 1 || fail "build b"
[ -s rep_a/manifest.blot ] || fail "manifest missing"

"$BLOTCTL" info --dir rep_a | grep -q "KD8xT4/COL-GZIP" || fail "info"
"$BLOTCTL" info --dir rep_b | grep -q "+HYBRID" || fail "hybrid info"

"$BLOTCTL" query --dir rep_a \
    --range 120,122,30,32,1193875200,1196294400 --limit 2 \
    | grep -q "3000 records" || fail "whole-universe query count"

"$BLOTCTL" aggregate --dir rep_a \
    --range 120,122,30,32,1193875200,1196294400 \
    | grep -q "distinct objects: 15" || fail "aggregate distinct objects"

"$BLOTCTL" trajectory --dir rep_a --oid 3 --limit 1 \
    | grep -q "object 3: 200 samples" || fail "trajectory sample count"

"$BLOTCTL" recover --from rep_a --to rep_b || fail "recover"
"$BLOTCTL" info --dir rep_b | grep -q "records:    3000" || fail "recovered"

"$BLOTCTL" advise --data fleet.bin --records 65000000 --env hadoop \
    | grep -q "recommended replicas:" || fail "advise"

"$BLOTCTL" store-build --data fleet.bin --out mystore \
    --schemes "KD4xT4/ROW-SNAPPY;KD16xT8/COL-GZIP" || fail "store-build"
"$BLOTCTL" store-query --dir mystore \
    --range 120.9,121.1,30.9,31.1,1193875200,1194000000 \
    | grep -q "routed to replica" || fail "store-query routing"

# Observability surface: span trees, metric snapshots, the stats command.
TRACE="$("$BLOTCTL" store-query --dir mystore \
    --range 120.9,121.1,30.9,31.1,1193875200,1194000000 --trace)"
echo "$TRACE" | grep -q "measured_cost_ms" || fail "trace measured cost"
echo "$TRACE" | grep -q "estimated_cost_ms" || fail "trace estimated cost"
echo "$TRACE" | grep -q "execute .* partitions_scanned" || fail "trace tree"

"$BLOTCTL" query --dir rep_a \
    --range 120,122,30,32,1193875200,1196294400 --limit 1 --trace \
    | grep -q "load .* partitions" || fail "query trace"

"$BLOTCTL" store-query --dir mystore \
    --range 120.9,121.1,30.9,31.1,1193875200,1194000000 \
    --metrics-out metrics.json >/dev/null || fail "metrics-out"
grep -q '"query.routed_total"' metrics.json || fail "metrics-out contents"

"$BLOTCTL" stats --dir mystore --queries 8 > stats.json || fail "stats"
grep -q '"query.routed_total"' stats.json || fail "stats routed_total"
grep -q '"codec.decode_ms"' stats.json || fail "stats codec histograms"
grep -q '"query.cost_error_pct"' stats.json || fail "stats cost error"
"$BLOTCTL" stats --dir mystore --queries 4 --format prom \
    | grep -q "^# TYPE query_routed_total counter" || fail "stats prom"

# Error paths must fail cleanly (non-zero, no crash).
"$BLOTCTL" query --dir rep_a --range bad 2>/dev/null && fail "bad range ok?"
"$BLOTCTL" info --dir missing_dir 2>/dev/null && fail "missing dir ok?"
"$BLOTCTL" frobnicate 2>/dev/null && fail "unknown command ok?"
"$BLOTCTL" build --data fleet.bin --out x --scheme NONSENSE 2>/dev/null \
    && fail "bad scheme ok?"

echo "blotctl end-to-end: PASS"
