#!/usr/bin/env bash
# Fault-path contract of the blotctl CLI: distinct exit codes per error
# class (2 = invalid argument, 3 = corrupt data, 4 = query failed, 1 =
# other), one-line stderr diagnostics, and the --inject-faults flag.
# Usage: blotctl_fault_test.sh <path-to-blotctl>
set -u
BLOTCTL="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

# expect_exit <code> <label> -- <cmd...>: the command must exit with
# exactly <code>; its stderr is kept in err.txt for message checks.
expect_exit() {
  local want="$1" label="$2"
  shift 3
  "$@" >out.txt 2>err.txt
  local got=$?
  [ "$got" -eq "$want" ] \
    || fail "$label: expected exit $want, got $got (stderr: $(cat err.txt))"
}

"$BLOTCTL" generate --out fleet.bin --taxis 10 --samples 150 \
    || fail "generate"
"$BLOTCTL" build --data fleet.bin --out rep_a --scheme KD4xT4/ROW-SNAPPY \
    || fail "build"
"$BLOTCTL" store-build --data fleet.bin --out duostore \
    --schemes "KD4xT4/ROW-SNAPPY;KD16xT8/COL-GZIP" || fail "store-build duo"
"$BLOTCTL" store-build --data fleet.bin --out solostore \
    --schemes "KD4xT4/ROW-SNAPPY" || fail "store-build solo"
RANGE="120,122,30,32,1193875200,1196294400"

# --- exit 2: caller errors ---------------------------------------------
expect_exit 2 "bad range" -- "$BLOTCTL" query --dir rep_a --range bad
grep -q "^invalid argument:" err.txt || fail "bad range diagnostic"
expect_exit 2 "missing dir" -- "$BLOTCTL" info --dir missing_dir
expect_exit 2 "bad fault spec" -- "$BLOTCTL" query --dir rep_a \
    --range "$RANGE" --inject-faults "bogus=1"
grep -q "^invalid argument:.*ParseFaultSpec" err.txt \
    || fail "bad fault spec diagnostic"
expect_exit 2 "usage" -- "$BLOTCTL" help

# --- exit 3: corruption detected at the read path ----------------------
# A single-replica query command has nowhere to fail over: an injected
# fault surfaces as CorruptData.
expect_exit 3 "query corrupt" -- "$BLOTCTL" query --dir rep_a \
    --range "$RANGE" --inject-faults "seed=7;p=1;kinds=bitflip;fires=0"
grep -q "^corrupt data:.*checksum mismatch" err.txt \
    || fail "query corrupt diagnostic"

# Persisted-store corruption is caught by Load's checksums. XOR-free
# overwrite with 0xFF bytes: real record payload is never 16 bytes of
# 0xFF, so the dataset definitely changed.
cp -r duostore corruptstore
printf '\377%.0s' $(seq 16) | dd of=corruptstore/dataset.bin bs=1 \
    count=16 seek=64 conv=notrunc 2>/dev/null || fail "dd"
expect_exit 3 "corrupt store" -- "$BLOTCTL" store-query --dir corruptstore \
    --range "$RANGE"
grep -q "^corrupt data:" err.txt || fail "corrupt store diagnostic"

# --- exit 4: query unservable (every copy of a partition gone) ---------
expect_exit 4 "total loss" -- "$BLOTCTL" store-query --dir solostore \
    --range "$RANGE" --inject-faults "seed=7;p=1;kinds=bitflip;fires=0"
grep -q "^query failed:.*partition" err.txt || fail "total loss diagnostic"

# --- failover: faults in one replica must not lose the query -----------
VICTIM="KD4xT4/ROW-SNAPPY"
"$BLOTCTL" store-query --dir duostore --range "$RANGE" \
    --inject-faults "seed=7;p=1;kinds=bitflip;replica=$VICTIM;fires=0" \
    >degraded.txt 2>faults.txt || fail "failover query"
grep -q "degraded: served by" degraded.txt || fail "degraded line"
grep -q "1500 records" degraded.txt || fail "failover record count"
grep -q "^faults: " faults.txt || fail "fault summary line"

# Healthy run for comparison: same records, no degradation.
"$BLOTCTL" store-query --dir duostore --range "$RANGE" >healthy.txt \
    || fail "healthy query"
grep -q "1500 records" healthy.txt || fail "healthy record count"
grep -q "degraded" healthy.txt && fail "healthy run claims degraded?"

# Latency faults delay but never corrupt.
"$BLOTCTL" query --dir rep_a --range "$RANGE" --limit 1 \
    --inject-faults "kinds=latency;latency=1" >out.txt 2>/dev/null \
    || fail "latency query"
grep -q "1500 records" out.txt || fail "latency record count"

# stats accepts the flag and still emits a snapshot (failover metrics
# included once faults fired).
"$BLOTCTL" stats --dir duostore --queries 4 \
    --inject-faults "seed=3;p=1;kinds=bitflip;replica=$VICTIM" \
    >stats.json 2>/dev/null || fail "stats with faults"
grep -q '"failover.attempts_total"' stats.json \
    || fail "stats failover metrics"

echo "blotctl fault paths: PASS"
