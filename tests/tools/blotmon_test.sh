#!/usr/bin/env bash
# End-to-end test of blotmon against real telemetry from blotctl: the
# --profile stage sum stays consistent with the query total, a chaos run
# leaves an event log blotmon renders as a coherent incident timeline,
# and --summary reconstructs snapshot JSONL into the same quantiles the
# in-process registry exported. Usage:
#   blotmon_test.sh <path-to-blotmon> <path-to-blotctl>
set -u
BLOTMON="$1"
BLOTCTL="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

RANGE="120,122,30,32,1193875200,1196294400"

"$BLOTCTL" generate --out fleet.bin --taxis 12 --samples 200 --seed 9 \
    || fail "generate"
"$BLOTCTL" store-build --data fleet.bin --out duostore \
    --schemes "KD4xT4/ROW-SNAPPY;KD16xT8/COL-GZIP" || fail "store-build"

# --- 1. --profile: stage times sum to within 10% of the total. ---------
# A whole-universe query so the work dwarfs the timing overhead around
# the stage boundaries (tiny queries make the relative gap noisy).
"$BLOTCTL" store-query --dir duostore --range "$RANGE" --profile \
    >profile.txt 2>/dev/null || fail "profiled query"
grep -q "stage            wall_ms" profile.txt || fail "profile table"
grep -q "stages sum" profile.txt || fail "profile consistency line"
awk '/stages sum/ {
       total = $2; sum = $6;
       gap = total - sum; if (gap < 0) gap = -gap;
       if (total <= 0 || gap / total > 0.10) exit 1;
     }' profile.txt || fail "stage sum deviates >10% from total: \
$(grep 'stages sum' profile.txt)"

# --- 2. Chaos run: the event log renders as an incident timeline. ------
# Every partition of every replica is corrupted, so the query must
# quarantine both replicas, exhaust failover, and exit 4 — leaving a
# quarantine/failover event trail behind.
"$BLOTCTL" store-query --dir duostore --range "$RANGE" \
    --inject-faults "seed=7;p=1;kinds=bitflip;fires=0" \
    --event-log events.jsonl >/dev/null 2>&1
status=$?
[ "$status" -eq 4 ] || fail "chaos query exited $status, want 4"
[ -s events.jsonl ] || fail "chaos run left no event log"

"$BLOTMON" events.jsonl >stream.txt 2>/dev/null || fail "blotmon stream"
grep -q "quarantine" stream.txt || fail "stream missing quarantine events"
grep -q "failover" stream.txt || fail "stream missing failover events"

"$BLOTMON" events.jsonl --summary >postmortem.txt 2>/dev/null \
    || fail "blotmon --summary"
grep -q "^events: " postmortem.txt || fail "summary event counts"
grep -q "^by category:" postmortem.txt || fail "summary category table"
grep -q "^incident timeline:" postmortem.txt || fail "incident timeline"
grep -q "quarantine" postmortem.txt || fail "timeline missing quarantine"
grep -q "failover" postmortem.txt || fail "timeline missing failover"

# Category filtering narrows the stream to one subsystem.
"$BLOTMON" events.jsonl --category failover >failover_only.txt \
    2>/dev/null || fail "blotmon --category"
grep -q "failover" failover_only.txt || fail "category filter kept nothing"
grep -q "quarantine" failover_only.txt \
    && fail "category filter leaked quarantine events"

# --- 3. --summary quantiles match the in-process registry exactly. -----
# stats exports the registry as JSON (--out) and the same run's snapshot
# time series (--snapshots-out); blotmon's reconstruction uses the same
# HistogramPercentile interpolation, so p50/p95/p99 must be identical.
"$BLOTCTL" stats --dir duostore --queries 24 --seed 5 \
    --snapshots-out snaps.jsonl --snapshot-interval-ms 10 \
    --out metrics.json --format json >/dev/null 2>&1 || fail "stats"
[ -s snaps.jsonl ] || fail "stats left no snapshots"
grep -q '"schema":"blot.snapshot.v1"' snaps.jsonl \
    || fail "snapshot schema marker"

"$BLOTMON" snaps.jsonl --summary >summary.txt 2>/dev/null \
    || fail "blotmon snapshot summary"
grep -q "per-stage latency (query.stage_ms):" summary.txt \
    || fail "summary stage table"

python3 - metrics.json summary.txt <<'EOF' || fail "quantile mismatch"
import json, sys

metrics = json.load(open(sys.argv[1]))
rows = {}
for line in open(sys.argv[2]):
    parts = line.split()
    if len(parts) == 5 and "{" in parts[0]:
        rows[parts[0]] = parts[1:]

checked = 0
for hist in metrics["histograms"]:
    if hist["name"] != "query.stage_ms":
        continue
    labels = ",".join(f"{k}={v}" for k, v in sorted(hist["labels"].items()))
    key = f'{hist["name"]}{{{labels}}}'
    if key not in rows:
        sys.exit(f"stage row {key} missing from blotmon summary")
    count, p50, p95, p99 = rows[key]
    if int(count) != hist["count"]:
        sys.exit(f"{key}: count {count} != registry {hist['count']}")
    for name, got in (("p50", p50), ("p95", p95), ("p99", p99)):
        if float(got) != float(hist[name]):
            sys.exit(f"{key}: {name} {got} != registry {hist[name]}")
    checked += 1
if checked == 0:
    sys.exit("no query.stage_ms histograms to compare")
print(f"matched {checked} stage histograms exactly")
EOF

# --- 4. Usage and error paths. -----------------------------------------
"$BLOTMON" >/dev/null 2>&1
[ $? -eq 2 ] || fail "no-args should exit 2"
"$BLOTMON" --help >/dev/null 2>&1
[ $? -eq 2 ] || fail "--help should exit 2 (usage)"
"$BLOTMON" events.jsonl --follow --summary >/dev/null 2>&1
[ $? -eq 2 ] || fail "--follow --summary conflict should exit 2"
"$BLOTMON" events.jsonl --bogus >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown flag should exit 2"
"$BLOTMON" no_such_file.jsonl >/dev/null 2>&1
[ $? -eq 1 ] || fail "missing file should exit 1"

# Malformed lines are skipped with a warning, not a crash.
printf 'not json\n' >>snaps.jsonl
"$BLOTMON" snaps.jsonl --summary >/dev/null 2>warn.txt \
    || fail "malformed line crashed blotmon"
grep -q "malformed line" warn.txt || fail "no malformed-line warning"

echo "PASS"
