#!/usr/bin/env bash
# End-to-end test of the blotfuzz soak tool: a clean soak exits 0 with
# full coverage counters, usage errors exit 2, and an injected-fault
# campaign with repair disabled prints a one-line repro command that
# replays the same failure deterministically.
set -u

BLOTFUZZ="$1"

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# --- 1. Clean soak: exit 0 and a zero-mismatch summary. ----------------
out=$("$BLOTFUZZ" --rounds 3 --seed 7 --quiet 2>&1) ||
  fail "clean run exited non-zero: $out"
echo "$out" | grep -q ", 0 mismatches" ||
  fail "clean summary missing zero-mismatch count: $out"

# --- 2. Unknown flags are usage errors. --------------------------------
"$BLOTFUZZ" --bogus >/dev/null 2>&1
status=$?
[ "$status" -eq 2 ] || fail "unknown flag exited $status, want 2"

"$BLOTFUZZ" --inject-faults "kinds=nosuchfault" >/dev/null 2>&1
status=$?
[ "$status" -eq 2 ] || fail "bad fault spec exited $status, want 2"

# --- 3. Seeds span the full uint64 range; parsing must not abort. ------
# IterationSeed() yields uniform 64-bit values, so roughly half of all
# printed repro seeds exceed INT64_MAX. A signed parse would throw
# out_of_range and std::terminate instead of replaying.
out=$("$BLOTFUZZ" --seed=11064657849904403925 --rounds=1 --quiet 2>&1)
status=$?
[ "$status" -eq 0 ] || fail "uint64 seed run exited $status, want 0: $out"

"$BLOTFUZZ" --seed=notanumber >/dev/null 2>&1
status=$?
[ "$status" -eq 2 ] || fail "malformed seed exited $status, want 2"

# --- 4. Faults + --no-repair: mismatches with repro lines. -------------
# Non-default --max-records: the repro line must pin it, or the replay
# regenerates a different dataset and silently fails to reproduce.
out=$("$BLOTFUZZ" --rounds 5 --seed 42 --max-records 256 \
      --inject-faults 'p=0.6;kinds=bitflip' --no-repair --quiet 2>&1)
status=$?
[ "$status" -eq 1 ] || fail "fault campaign exited $status, want 1: $out"
echo "$out" | grep -q "MISMATCH check=" || fail "no MISMATCH lines: $out"

# Prefer a mismatch from a round > 0: its SplitMix64-derived seed is
# usually above INT64_MAX, so replaying it exercises the full-range seed
# parse end to end (round 0's seed is just 42).
mismatch=$(echo "$out" | awk '/^MISMATCH check=/ && $0 !~ / iter=0 / { print; exit }')
[ -n "$mismatch" ] || mismatch=$(echo "$out" | grep -m1 '^MISMATCH check=')
check=$(echo "$mismatch" | sed 's/.*check=\([^ ]*\).*/\1/')
seed=$(echo "$mismatch" | sed 's/.*seed=\([^ ]*\).*/\1/')
repro=$(echo "$out" | grep -m1 "  repro: blotfuzz --seed=$seed " |
        sed 's/^  repro: blotfuzz //')
[ -n "$repro" ] || fail "no repro line for seed $seed in output: $out"
echo "$repro" | grep -q -- "--no-repair" ||
  fail "repro line lost --no-repair: $repro"
echo "$repro" | grep -q -- "--max-records=256" ||
  fail "repro line lost --max-records: $repro"

# --- 5. The printed repro replays the same failure, deterministically. -
# (eval honors the quoting of --inject-faults='...' in the repro line.)
replay1=$(eval "\"$BLOTFUZZ\" $repro --quiet" 2>&1)
s1=$?
replay2=$(eval "\"$BLOTFUZZ\" $repro --quiet" 2>&1)
s2=$?
[ "$s1" -eq 1 ] || fail "replay exited $s1, want 1: $replay1"
[ "$s2" -eq 1 ] || fail "second replay exited $s2, want 1"
[ "$replay1" = "$replay2" ] || fail "replay is not deterministic"

# The check that failed originally fails again in the replay (the repro
# pins the iteration seed, so the iteration is identical).
echo "$replay1" | grep -qF "check=$check" ||
  fail "original failing check '$check' absent from replay: $replay1"

echo "PASS"
