#!/usr/bin/env bash
# End-to-end test of the blotfuzz soak tool: a clean soak exits 0 with
# full coverage counters, usage errors exit 2, and an injected-fault
# campaign with repair disabled prints a one-line repro command that
# replays the same failure deterministically.
set -u

BLOTFUZZ="$1"

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# --- 1. Clean soak: exit 0 and a zero-mismatch summary. ----------------
out=$("$BLOTFUZZ" --rounds 3 --seed 7 --quiet 2>&1) ||
  fail "clean run exited non-zero: $out"
echo "$out" | grep -q ", 0 mismatches" ||
  fail "clean summary missing zero-mismatch count: $out"

# --- 2. Unknown flags are usage errors. --------------------------------
"$BLOTFUZZ" --bogus >/dev/null 2>&1
status=$?
[ "$status" -eq 2 ] || fail "unknown flag exited $status, want 2"

"$BLOTFUZZ" --inject-faults "kinds=nosuchfault" >/dev/null 2>&1
status=$?
[ "$status" -eq 2 ] || fail "bad fault spec exited $status, want 2"

# --- 3. Faults + --no-repair: mismatches with repro lines. -------------
out=$("$BLOTFUZZ" --rounds 5 --seed 42 \
      --inject-faults 'p=0.6;kinds=bitflip' --no-repair --quiet 2>&1)
status=$?
[ "$status" -eq 1 ] || fail "fault campaign exited $status, want 1: $out"
echo "$out" | grep -q "MISMATCH check=" || fail "no MISMATCH lines: $out"

repro=$(echo "$out" | grep -m1 '  repro: blotfuzz ' | sed 's/^  repro: blotfuzz //')
[ -n "$repro" ] || fail "no repro line in output: $out"
echo "$repro" | grep -q -- "--no-repair" ||
  fail "repro line lost --no-repair: $repro"

# --- 4. The printed repro replays the same failure, deterministically. -
# (eval honors the quoting of --inject-faults='...' in the repro line.)
replay1=$(eval "\"$BLOTFUZZ\" $repro --quiet" 2>&1)
s1=$?
replay2=$(eval "\"$BLOTFUZZ\" $repro --quiet" 2>&1)
s2=$?
[ "$s1" -eq 1 ] || fail "replay exited $s1, want 1: $replay1"
[ "$s2" -eq 1 ] || fail "second replay exited $s2, want 1"
[ "$replay1" = "$replay2" ] || fail "replay is not deterministic"

# The check that failed originally fails again in the replay (the repro
# pins the iteration seed, so the iteration is identical).
check=$(echo "$out" | grep -m1 "MISMATCH check=" |
        sed 's/.*check=\([^ ]*\).*/\1/')
echo "$replay1" | grep -qF "check=$check" ||
  fail "original failing check '$check' absent from replay: $replay1"

echo "PASS"
