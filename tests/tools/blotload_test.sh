#!/usr/bin/env bash
# Smoke test for the blotload macro-benchmark driver and the serving
# path of blotctl store-query. Runs both loops at tiny scale and checks
# the BENCH_serving.json shape the tripwire consumes plus the
# concurrency flags of store-query. Usage:
#   blotload_test.sh <path-to-blotload> <path-to-blotctl>
set -u
BLOTLOAD="$1"
BLOTCTL="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

# --- blotload: both loops, tiny budget, must stay consistent ----------
"$BLOTLOAD" --records 6000 --shapes 8 --duration-s 0.3 --io-ms 3 \
    --out serving.json || fail "blotload run"
[ -s serving.json ] || fail "report missing"
grep -q '"schema": "blot.bench.v1"' serving.json || fail "schema"
grep -q '"bench": "serving"' serving.json || fail "bench name"
grep -q 'closed_loop_scaling_8v1_speedup' serving.json || fail "scaling metric"
grep -q 'overload_shed_rate_pct' serving.json || fail "shed metric"
grep -q 'closed_loop_p99_ms_w8' serving.json || fail "p99 metric"
grep -q '"name": "result_mismatches", "value": 0' serving.json \
    || fail "mismatch-free run"

# Single-mode runs exercise the mode switch.
"$BLOTLOAD" --mode closed --records 4000 --shapes 4 --duration-s 0.2 \
    --threads 1,2 --out closed.json || fail "closed-only run"
grep -q 'closed_loop_qps_w2' closed.json || fail "closed-only metrics"
grep -q 'overload_shed_rate_pct' closed.json && fail "closed-only has open metrics"

"$BLOTLOAD" --mode open --records 4000 --shapes 4 --duration-s 0.2 \
    --out open.json || fail "open-only run"
grep -q 'overload_shed_rate_pct' open.json || fail "open-only metrics"

# Usage errors must be caught (structured InvalidArgument, not a crash).
"$BLOTLOAD" --mode sideways 2>/dev/null && fail "bad mode accepted"
"$BLOTLOAD" --no-such-flag 1 2>/dev/null && fail "unknown flag accepted"

# --- blotctl store-query --concurrency/--repeat -----------------------
"$BLOTCTL" generate --out fleet.bin --taxis 10 --samples 150 \
    || fail "generate"
"$BLOTCTL" store-build --data fleet.bin --out store \
    --schemes "KD4xT4/ROW-SNAPPY;KD16xT8/COL-GZIP" || fail "store-build"

OUT="$("$BLOTCTL" store-query --dir store \
    --range 120.9,121.1,30.9,31.1,1193875200,1194000000 \
    --concurrency 4 --repeat 12)" || fail "concurrent store-query"
echo "$OUT" | grep -q "routed to replica" || fail "routing line"
echo "$OUT" | grep -q "12 runs on 4 workers" || fail "summary line"
echo "$OUT" | grep -q "p95" || fail "latency percentiles"

# --profile still prints the stage breakdown on the serving path.
"$BLOTCTL" store-query --dir store \
    --range 120.9,121.1,30.9,31.1,1193875200,1194000000 \
    --concurrency 2 --repeat 4 --profile | grep -q "route" \
    || fail "profile under concurrency"

# Exit-code contract: usage errors stay 2, with or without concurrency.
"$BLOTCTL" store-query --dir store --range bogus --concurrency 2 --repeat 2
[ $? -eq 2 ] || fail "usage error code"
"$BLOTCTL" store-query --dir store \
    --range 120.9,121.1,30.9,31.1,1193875200,1194000000 \
    --concurrency 0 2>/dev/null
[ $? -eq 2 ] || fail "zero concurrency rejected as usage error"
# --trace is single-run-only and must say so as a usage error.
"$BLOTCTL" store-query --dir store \
    --range 120.9,121.1,30.9,31.1,1193875200,1194000000 \
    --concurrency 2 --repeat 2 --trace 2>/dev/null
[ $? -eq 2 ] || fail "trace + concurrency rejected as usage error"

echo "PASS"
