// Unit tests for the serving layer (serve::QueryServer): admission,
// byte budgets, structured shedding, drain semantics and stats — and
// that served results match the brute-force oracle.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/fixtures.h"
#include "core/store.h"
#include "testing/oracle.h"
#include "util/error.h"

namespace blot {
namespace {

using test::CentroidQuery;
using test::CorruptInvolved;
using test::MakeStandardStore;
using test::Sorted;
using test::TaxiFixture;

CostModel Model() { return CostModel{EnvironmentModel::LocalHadoop()}; }

TEST(QueryServerTest, ServedResultsMatchOracle) {
  const TaxiFixture fleet;
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  const testing::Oracle oracle(fleet.dataset);
  serve::QueryServer server(store, Model());
  for (const double fraction : {0.05, 0.2, 0.5, 1.0}) {
    const STRange query = CentroidQuery(fleet.universe, fraction);
    const auto routed = server.Execute(query);
    EXPECT_EQ(Sorted(routed.result.records), Sorted(oracle.RangeQuery(query)))
        << "fraction " << fraction;
    EXPECT_GT(routed.query_id, 0u);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(QueryServerTest, ShedsBeyondInflightLimitWithRetryAfter) {
  const TaxiFixture fleet;
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  serve::ServerOptions options;
  options.worker_threads = 1;
  options.max_inflight = 1;
  options.simulate_io_ms = 50.0;  // parks the admitted query long enough
  serve::QueryServer server(store, Model(), options);
  const STRange query = CentroidQuery(fleet.universe, 0.1);
  auto admitted = server.Submit(query);
  try {
    server.Submit(query);
    FAIL() << "second submit should shed";
  } catch (const serve::OverloadedError& e) {
    EXPECT_GT(e.retry_after_ms(), 0.0);
    EXPECT_EQ(e.queue_depth(), 1u);
    EXPECT_FALSE(e.shutting_down());
  }
  admitted.get();
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed, 1u);
}

TEST(QueryServerTest, ByteBudgetShedsWhileBusyButNeverBlocksAnIdleServer) {
  const TaxiFixture fleet;
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  serve::ServerOptions options;
  options.worker_threads = 1;
  options.max_inflight = 8;
  options.max_inflight_bytes = 1;  // every real query exceeds this alone
  options.simulate_io_ms = 50.0;
  serve::QueryServer server(store, Model(), options);
  const STRange query = CentroidQuery(fleet.universe, 1.0);
  // An idle server admits even a query larger than the whole budget —
  // otherwise it could never run at all.
  auto first = server.Submit(query);
  EXPECT_THROW(server.Submit(query), serve::OverloadedError);
  first.get();
  const auto stats = server.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed, 1u);
}

TEST(QueryServerTest, DrainRefusesNewWorkAndIsIdempotent) {
  const TaxiFixture fleet;
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  serve::QueryServer server(store, Model());
  const STRange query = CentroidQuery(fleet.universe, 0.2);
  server.Execute(query);
  server.Drain();
  server.Drain();
  try {
    server.Submit(query);
    FAIL() << "submit after drain should be refused";
  } catch (const serve::OverloadedError& e) {
    EXPECT_TRUE(e.shutting_down());
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(QueryServerTest, AdmittedQueryFailuresPropagateAndCount) {
  const TaxiFixture fleet;
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  const STRange query = CentroidQuery(fleet.universe, 0.2);
  // Every replica's copy of the involved partitions is gone: the query
  // is correctly admitted (capacity is fine) and then fails with the
  // store's structured error, which the future rethrows.
  ASSERT_FALSE(CorruptInvolved(store, 0, query).empty());
  ASSERT_FALSE(CorruptInvolved(store, 1, query).empty());
  serve::QueryServer server(store, Model());
  EXPECT_THROW(server.Execute(query), QueryFailedError);
  const auto stats = server.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(QueryServerTest, ValidatesOptions) {
  const TaxiFixture fleet;
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  serve::ServerOptions zero_workers;
  zero_workers.worker_threads = 0;
  EXPECT_THROW(serve::QueryServer(store, Model(), zero_workers),
               InvalidArgument);
  serve::ServerOptions zero_inflight;
  zero_inflight.max_inflight = 0;
  EXPECT_THROW(serve::QueryServer(store, Model(), zero_inflight),
               InvalidArgument);
}

}  // namespace
}  // namespace blot
