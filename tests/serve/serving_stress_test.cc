// Concurrency stress for the re-entrant query engine and the serving
// layer, written to run clean under ThreadSanitizer (the CI tsan job
// picks this binary up by the "Serving" name).
//
// Two claims under load:
//   1. N clients hammering one QueryServer with the adversarial query
//      mix of the differential harness (empty/point/boundary/thin-slab/
//      random shapes) always get oracle-correct answers; overload is
//      only ever visible as a counted, structured OverloadedError.
//   2. The same holds while the store is degraded: with one replica's
//      partitions corrupted mid-run, concurrent queries fail over and
//      self-heal without ever returning a wrong answer.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/fixtures.h"
#include "core/store.h"
#include "serve/server.h"
#include "testing/generator.h"
#include "testing/oracle.h"
#include "util/rng.h"

namespace blot {
namespace {

using test::CentroidQuery;
using test::CorruptInvolved;
using test::MakeStandardStore;
using test::Sorted;
using test::TaxiFixture;

CostModel Model() { return CostModel{EnvironmentModel::LocalHadoop()}; }

// Worker bursts: submit a few queries without waiting, then collect, so
// in-flight genuinely exceeds the client count and admission control is
// exercised (not just tolerated).
struct ClientTally {
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t mismatches = 0;
};

ClientTally RunClient(serve::QueryServer& server,
                      const std::vector<STRange>& queries,
                      const testing::Oracle& oracle, std::size_t begin,
                      std::size_t stride, std::size_t burst) {
  ClientTally tally;
  std::vector<std::pair<std::size_t, std::future<BlotStore::RoutedResult>>>
      inflight;
  auto collect = [&] {
    for (auto& [qi, future] : inflight) {
      const auto routed = future.get();
      ++tally.completed;
      if (Sorted(routed.result.records) !=
          Sorted(oracle.RangeQuery(queries[qi])))
        ++tally.mismatches;
    }
    inflight.clear();
  };
  for (std::size_t i = begin; i < queries.size(); i += stride) {
    try {
      inflight.emplace_back(i, server.Submit(queries[i]));
    } catch (const serve::OverloadedError&) {
      ++tally.shed;
    }
    if (inflight.size() >= burst) collect();
  }
  collect();
  return tally;
}

TEST(ServingStressTest, AdversarialMixOracleCheckedUnderLoad) {
  Rng rng(0xB10C5E12F);
  const STRange universe = testing::DefaultTestUniverse();
  testing::DatasetProfile profile;
  profile.min_records = 512;
  profile.max_records = 1024;
  const Dataset dataset = testing::GenerateDataset(rng, universe, profile);
  const testing::Oracle oracle(dataset);
  BlotStore store = MakeStandardStore(dataset, universe, 3);
  const std::vector<STRange> queries =
      testing::GenerateQueries(rng, 96, universe, dataset);

  serve::ServerOptions options;
  options.worker_threads = 4;
  options.max_inflight = 6;  // tighter than the offered burst: must shed
  serve::QueryServer server(store, Model(), options);

  constexpr std::size_t kClients = 4;
  std::vector<std::future<ClientTally>> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.push_back(std::async(std::launch::async, [&, c] {
      return RunClient(server, queries, oracle, c, kClients, /*burst=*/3);
    }));
  ClientTally total;
  for (auto& client : clients) {
    const ClientTally tally = client.get();
    total.completed += tally.completed;
    total.shed += tally.shed;
    total.mismatches += tally.mismatches;
  }
  server.Drain();

  EXPECT_EQ(total.mismatches, 0u);
  EXPECT_GT(total.completed, 0u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.shed, total.shed);
  EXPECT_EQ(stats.completed + stats.shed, queries.size());
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(ServingStressTest, FailoverAndSelfHealStayCorrectUnderConcurrency) {
  const TaxiFixture fleet;
  const testing::Oracle oracle(fleet.dataset);
  BlotStore store = MakeStandardStore(fleet.dataset, fleet.universe);
  const CostModel model = Model();

  // Degrade the replica the mid-size query routes to, stop-the-world,
  // then serve a mix of hits to the quarantined range and clean queries
  // from several threads at once: the failover loop, quarantine
  // bookkeeping and sync repair all run concurrently.
  const STRange degraded_range = CentroidQuery(fleet.universe, 0.3);
  const std::size_t victim = store.RouteQuery(degraded_range, model);
  ASSERT_FALSE(CorruptInvolved(store, victim, degraded_range).empty());

  std::vector<STRange> queries;
  for (int i = 0; i < 32; ++i)
    queries.push_back(i % 2 == 0 ? degraded_range
                                 : CentroidQuery(fleet.universe,
                                                 0.05 + 0.02 * double(i)));

  serve::ServerOptions options;
  options.worker_threads = 4;
  options.max_inflight = 64;  // nothing sheds: correctness run
  serve::QueryServer server(store, model, options);

  constexpr std::size_t kClients = 4;
  std::vector<std::future<ClientTally>> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.push_back(std::async(std::launch::async, [&, c] {
      return RunClient(server, queries, oracle, c, kClients, /*burst=*/4);
    }));
  ClientTally total;
  for (auto& client : clients) {
    const ClientTally tally = client.get();
    total.completed += tally.completed;
    total.shed += tally.shed;
    total.mismatches += tally.mismatches;
  }
  server.Drain();

  EXPECT_EQ(total.mismatches, 0u);
  EXPECT_EQ(total.shed, 0u);
  EXPECT_EQ(total.completed, queries.size());
  const auto stats = server.stats();
  EXPECT_EQ(stats.failed, 0u);
  // The degraded copies were quarantined and sync-repaired; nothing may
  // still be quarantined once the run drains.
  store.WaitForRepairs();
  EXPECT_EQ(store.health().QuarantinedCount(), 0u);
}

}  // namespace
}  // namespace blot
