// Google-Benchmark glue for the BENCH_<name>.json writer.
//
// The gbench micro benches (micro_codec, micro_storage,
// micro_access_paths, micro_metrics_overhead) report through the same
// BenchReport schema as the handwritten ones: a CaptureReporter keeps
// every run's per-iteration timings (and user counters) while still
// printing the normal console table, and RunAndReport() folds them into
// BENCH_<name>.json after the benchmarks finish. A bench can pass a
// `finish` hook to derive tracked ratio metrics from the captured runs.
#ifndef BLOT_BENCH_GBENCH_CAPTURE_H_
#define BLOT_BENCH_GBENCH_CAPTURE_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace blot::bench {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Sample {
    std::string name;  // full run name including args, e.g. "BM_Scan/0/1"
    double real_ns = 0;  // per iteration
    double cpu_ns = 0;   // per iteration
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(
      const std::vector<benchmark::BenchmarkReporter::Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type !=
          benchmark::BenchmarkReporter::Run::RT_Iteration)
        continue;
      if (run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      Sample sample;
      sample.name = run.benchmark_name();
      // Accumulated times are seconds regardless of the display unit.
      sample.real_ns = run.real_accumulated_time / iters * 1e9;
      sample.cpu_ns = run.cpu_accumulated_time / iters * 1e9;
      for (const auto& [name, counter] : run.counters)
        sample.counters.emplace_back(name,
                                     static_cast<double>(counter.value));
      samples_.push_back(std::move(sample));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Sample>& samples() const { return samples_; }

  // Per-iteration real time of the run named exactly `name`, or -1 when
  // it did not run (filtered out, errored).
  double RealNs(const std::string& name) const {
    for (const Sample& s : samples_)
      if (s.name == name) return s.real_ns;
    return -1.0;
  }

  // Every captured run becomes an untracked metric pair
  // `<run>:real_ns` / `<run>:cpu_ns` plus its user counters.
  void Export(BenchReport& report) const {
    for (const Sample& s : samples_) {
      report.Metric(s.name + ":real_ns", s.real_ns);
      report.Metric(s.name + ":cpu_ns", s.cpu_ns);
      for (const auto& [name, value] : s.counters)
        report.Metric(s.name + ":" + name, value);
    }
  }

 private:
  std::vector<Sample> samples_;
};

// Shared gbench main body. A leading positional argument overrides the
// default output path (same convention as the handwritten benches); the
// remaining flags go to gbench as usual.
inline int RunAndReport(int argc, char** argv, const char* bench_name,
                        const char* default_json,
                        void (*finish)(const CaptureReporter&,
                                       BenchReport&) = nullptr) {
  std::string path = default_json;
  if (argc > 1 && argv[1][0] != '-') {
    path = argv[1];
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  BenchReport report(bench_name);
  reporter.Export(report);
  if (finish != nullptr) finish(reporter, report);
  if (!report.Write(path)) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace blot::bench

#endif  // BLOT_BENCH_GBENCH_CAPTURE_H_
