// Microbenchmarks for the auxiliary access paths: partition-index lookup
// (temporal bucketing), trajectory retrieval (object-digest pruning),
// shared-scan batch execution, segment-store persistence, and the fused
// decode-filter kernels against naive decode-then-filter.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_common.h"
#include "gbench_capture.h"
#include "blot/batch.h"
#include "blot/segment_store.h"
#include "blot/trajectory.h"
#include "core/workload.h"

namespace blot {
namespace {

const Dataset& Fleet() {
  static const Dataset dataset = bench::MakeSample(80000);
  return dataset;
}

const Replica& SharedReplica() {
  static const Replica replica = Replica::Build(
      Fleet(),
      {{.spatial_partitions = 64, .temporal_partitions = 32},
       EncodingScheme::FromName("COL-GZIP")},
      bench::PaperUniverse());
  return replica;
}

// Index with many partitions, to expose the bucketing win.
const PartitionIndex& BigIndex() {
  static const PartitionIndex index = [] {
    PartitionedData pd = PartitionDataset(
        Fleet(),
        {.spatial_partitions = 1024, .temporal_partitions = 64},
        bench::PaperUniverse());
    return PartitionIndex(std::move(pd.ranges));
  }();
  return index;
}

void BM_IndexLookupTimeSelective(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  Rng rng(1);
  const double time_frac = static_cast<double>(state.range(0)) / 100.0;
  const STRange query = SampleQueryInstance(
      {{universe.Width() * 0.2, universe.Height() * 0.2,
        universe.Duration() * time_frac}},
      universe, rng);
  for (auto _ : state) {
    auto involved = BigIndex().InvolvedPartitions(query);
    benchmark::DoNotOptimize(involved);
  }
  state.counters["partitions"] =
      static_cast<double>(BigIndex().NumPartitions());
}
BENCHMARK(BM_IndexLookupTimeSelective)->Arg(1)->Arg(10)->Arg(100);

void BM_TrajectoryIndexBuild(benchmark::State& state) {
  ThreadPool pool(4);
  for (auto _ : state) {
    TrajectoryIndex index(SharedReplica(), &pool);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_TrajectoryIndexBuild);

void BM_TrajectoryQuery(benchmark::State& state) {
  const TrajectoryIndex index(SharedReplica());
  const std::int64_t t0 =
      static_cast<std::int64_t>(bench::PaperUniverse().t_min());
  std::size_t scanned = 0;
  for (auto _ : state) {
    const auto result =
        index.Query(SharedReplica(), 7, t0, t0 + 86400 * 7);
    scanned += result.partitions_scanned;
    benchmark::DoNotOptimize(result);
  }
  state.counters["scanned_per_query"] =
      static_cast<double>(scanned) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TrajectoryQuery);

void BM_BatchVsSequentialGrid(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  const int cells = static_cast<int>(state.range(0));
  std::vector<STRange> queries;
  for (int gx = 0; gx < cells; ++gx)
    for (int gy = 0; gy < cells; ++gy)
      queries.push_back(STRange::FromBounds(
          universe.x_min() + universe.Width() * gx / cells,
          universe.x_min() + universe.Width() * (gx + 1) / cells,
          universe.y_min() + universe.Height() * gy / cells,
          universe.y_min() + universe.Height() * (gy + 1) / cells,
          universe.t_min(), universe.t_max()));
  double sharing = 0;
  for (auto _ : state) {
    const BatchResult batch = ExecuteBatch(SharedReplica(), queries);
    sharing = static_cast<double>(batch.naive_partition_scans) /
              static_cast<double>(batch.stats.partitions_scanned);
    benchmark::DoNotOptimize(batch);
  }
  state.counters["sharing_factor"] = sharing;
}
BENCHMARK(BM_BatchVsSequentialGrid)->Arg(4)->Arg(8);

void BM_SegmentStoreSave(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "blot_bench_segment_store";
  for (auto _ : state) {
    SegmentStore::Save(SharedReplica(), dir);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * SharedReplica().StorageBytes()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreSave);

void BM_SegmentStoreLoad(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "blot_bench_segment_store2";
  SegmentStore::Save(SharedReplica(), dir);
  for (auto _ : state) {
    Replica replica = SegmentStore::Load(dir);
    benchmark::DoNotOptimize(replica);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * SharedReplica().StorageBytes()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreLoad);

// --- Fused decode-filter vs naive decode-then-filter -------------------
//
// One encoded partition, queries of varying selectivity. The naive path
// materializes every record and filters afterwards; the fused path
// filters during deserialization — for columns it decodes the x/y/t
// coordinate columns first and touches attribute columns only for
// matches, for rows it skips the attribute bytes of non-matching rows.

const std::vector<Record>& PartitionRecords() {
  static const std::vector<Record> records = [] {
    // One KD64xT32 partition's worth of spatially-local records.
    return Fleet().FilterByRange(
        STRange::FromBounds(120.8, 121.2, 30.8, 31.2,
                            bench::PaperUniverse().t_min(),
                            bench::PaperUniverse().t_max()));
  }();
  return records;
}

// A query matching roughly `pct`% of the partition's records (by time
// prefix, so both layouts keep their sequential access pattern).
STRange SelectQuery(int pct) {
  const STRange u = bench::PaperUniverse();
  return STRange::FromBounds(
      u.x_min(), u.x_max(), u.y_min(), u.y_max(), u.t_min(),
      u.t_min() + u.Duration() * static_cast<double>(pct) / 100.0);
}

void BM_ScanNaiveDecodeThenFilter(benchmark::State& state) {
  const EncodingScheme scheme = AllEncodingSchemes()[state.range(0)];
  const Bytes data = EncodePartition(PartitionRecords(), scheme);
  const STRange query = SelectQuery(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const std::vector<Record> all = DecodePartition(data, scheme);
    std::vector<Record> matches;
    for (const Record& r : all)
      if (query.Contains(r.Position())) matches.push_back(r);
    benchmark::DoNotOptimize(matches);
  }
  state.SetLabel(scheme.Name());
  state.counters["records"] = static_cast<double>(PartitionRecords().size());
}

void BM_ScanFusedDecodeFilter(benchmark::State& state) {
  const EncodingScheme scheme = AllEncodingSchemes()[state.range(0)];
  const Bytes data = EncodePartition(PartitionRecords(), scheme);
  const STRange query = SelectQuery(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    std::vector<Record> matches = DecodePartitionInRange(data, scheme, query);
    benchmark::DoNotOptimize(matches);
  }
  state.SetLabel(scheme.Name());
  state.counters["records"] = static_cast<double>(PartitionRecords().size());
}

// Scheme index: 0 = ROW-PLAIN, 4 = COL-SNAPPY (AllEncodingSchemes order);
// selectivity 1%, 10%, 100% of the partition.
#define FUSED_ARGS                                         \
  ->Args({0, 1})->Args({0, 10})->Args({0, 100})            \
  ->Args({4, 1})->Args({4, 10})->Args({4, 100})
BENCHMARK(BM_ScanNaiveDecodeThenFilter) FUSED_ARGS;
BENCHMARK(BM_ScanFusedDecodeFilter) FUSED_ARGS;
#undef FUSED_ARGS

// End-to-end query path with the cache disabled: Replica::Execute runs
// the fused kernel per involved partition.
void BM_ExecuteFusedSelective(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  Rng rng(7);
  const STRange query = SampleQueryInstance(
      {{universe.Width() * 0.05, universe.Height() * 0.05,
        universe.Duration() * 0.05}},
      universe, rng);
  for (auto _ : state) {
    const QueryResult result = SharedReplica().Execute(query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecuteFusedSelective);

}  // namespace

namespace bench {
namespace {

// Tracked metrics for the CI perf tripwire: ratios between runs of this
// same binary, so they hold across machines. The fused-kernel speedups
// are the ones this bench exists to defend.
void DeriveTracked(const CaptureReporter& reporter, BenchReport& report) {
  const auto ratio = [&](const char* name, const std::string& numerator,
                         const std::string& denominator) {
    const double num = reporter.RealNs(numerator);
    const double den = reporter.RealNs(denominator);
    if (num > 0 && den > 0) report.Metric(name, num / den, /*tracked=*/true);
  };
  ratio("fused_speedup_row_1pct", "BM_ScanNaiveDecodeThenFilter/0/1",
        "BM_ScanFusedDecodeFilter/0/1");
  ratio("fused_speedup_col_1pct", "BM_ScanNaiveDecodeThenFilter/4/1",
        "BM_ScanFusedDecodeFilter/4/1");
  ratio("index_time_bucketing_speedup", "BM_IndexLookupTimeSelective/100",
        "BM_IndexLookupTimeSelective/1");
}

}  // namespace
}  // namespace bench
}  // namespace blot

int main(int argc, char** argv) {
  return blot::bench::RunAndReport(argc, argv, "micro_access_paths",
                                   "BENCH_access_paths.json",
                                   blot::bench::DeriveTracked);
}
