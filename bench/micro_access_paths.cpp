// Microbenchmarks for the auxiliary access paths: partition-index lookup
// (temporal bucketing), trajectory retrieval (object-digest pruning),
// shared-scan batch execution, and segment-store persistence.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_common.h"
#include "blot/batch.h"
#include "blot/segment_store.h"
#include "blot/trajectory.h"
#include "core/workload.h"

namespace blot {
namespace {

const Dataset& Fleet() {
  static const Dataset dataset = bench::MakeSample(80000);
  return dataset;
}

const Replica& SharedReplica() {
  static const Replica replica = Replica::Build(
      Fleet(),
      {{.spatial_partitions = 64, .temporal_partitions = 32},
       EncodingScheme::FromName("COL-GZIP")},
      bench::PaperUniverse());
  return replica;
}

// Index with many partitions, to expose the bucketing win.
const PartitionIndex& BigIndex() {
  static const PartitionIndex index = [] {
    PartitionedData pd = PartitionDataset(
        Fleet(),
        {.spatial_partitions = 1024, .temporal_partitions = 64},
        bench::PaperUniverse());
    return PartitionIndex(std::move(pd.ranges));
  }();
  return index;
}

void BM_IndexLookupTimeSelective(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  Rng rng(1);
  const double time_frac = static_cast<double>(state.range(0)) / 100.0;
  const STRange query = SampleQueryInstance(
      {{universe.Width() * 0.2, universe.Height() * 0.2,
        universe.Duration() * time_frac}},
      universe, rng);
  for (auto _ : state) {
    auto involved = BigIndex().InvolvedPartitions(query);
    benchmark::DoNotOptimize(involved);
  }
  state.counters["partitions"] =
      static_cast<double>(BigIndex().NumPartitions());
}
BENCHMARK(BM_IndexLookupTimeSelective)->Arg(1)->Arg(10)->Arg(100);

void BM_TrajectoryIndexBuild(benchmark::State& state) {
  ThreadPool pool(4);
  for (auto _ : state) {
    TrajectoryIndex index(SharedReplica(), &pool);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_TrajectoryIndexBuild);

void BM_TrajectoryQuery(benchmark::State& state) {
  const TrajectoryIndex index(SharedReplica());
  const std::int64_t t0 =
      static_cast<std::int64_t>(bench::PaperUniverse().t_min());
  std::size_t scanned = 0;
  for (auto _ : state) {
    const auto result =
        index.Query(SharedReplica(), 7, t0, t0 + 86400 * 7);
    scanned += result.partitions_scanned;
    benchmark::DoNotOptimize(result);
  }
  state.counters["scanned_per_query"] =
      static_cast<double>(scanned) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TrajectoryQuery);

void BM_BatchVsSequentialGrid(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  const int cells = static_cast<int>(state.range(0));
  std::vector<STRange> queries;
  for (int gx = 0; gx < cells; ++gx)
    for (int gy = 0; gy < cells; ++gy)
      queries.push_back(STRange::FromBounds(
          universe.x_min() + universe.Width() * gx / cells,
          universe.x_min() + universe.Width() * (gx + 1) / cells,
          universe.y_min() + universe.Height() * gy / cells,
          universe.y_min() + universe.Height() * (gy + 1) / cells,
          universe.t_min(), universe.t_max()));
  double sharing = 0;
  for (auto _ : state) {
    const BatchResult batch = ExecuteBatch(SharedReplica(), queries);
    sharing = static_cast<double>(batch.naive_partition_scans) /
              static_cast<double>(batch.stats.partitions_scanned);
    benchmark::DoNotOptimize(batch);
  }
  state.counters["sharing_factor"] = sharing;
}
BENCHMARK(BM_BatchVsSequentialGrid)->Arg(4)->Arg(8);

void BM_SegmentStoreSave(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "blot_bench_segment_store";
  for (auto _ : state) {
    SegmentStore::Save(SharedReplica(), dir);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * SharedReplica().StorageBytes()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreSave);

void BM_SegmentStoreLoad(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "blot_bench_segment_store2";
  SegmentStore::Save(SharedReplica(), dir);
  for (auto _ : state) {
    Replica replica = SegmentStore::Load(dir);
    benchmark::DoNotOptimize(replica);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * SharedReplica().StorageBytes()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreLoad);

}  // namespace
}  // namespace blot

BENCHMARK_MAIN();
