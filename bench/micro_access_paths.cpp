// Microbenchmarks for the auxiliary access paths: partition-index lookup
// (temporal bucketing), trajectory retrieval (object-digest pruning),
// shared-scan batch execution, segment-store persistence, and the fused
// decode-filter kernels against naive decode-then-filter.
#include <benchmark/benchmark.h>

#include <filesystem>

#include <algorithm>

#include "bench_common.h"
#include "gbench_capture.h"
#include "blot/batch.h"
#include "blot/segment_store.h"
#include "blot/trajectory.h"
#include "codec/columnar.h"
#include "codec/simd/dispatch.h"
#include "codec/simd/kernels.h"
#include "core/workload.h"

namespace blot {
namespace {

const Dataset& Fleet() {
  static const Dataset dataset = bench::MakeSample(80000);
  return dataset;
}

const Replica& SharedReplica() {
  static const Replica replica = Replica::Build(
      Fleet(),
      {{.spatial_partitions = 64, .temporal_partitions = 32},
       EncodingScheme::FromName("COL-GZIP")},
      bench::PaperUniverse());
  return replica;
}

// Index with many partitions, to expose the bucketing win.
const PartitionIndex& BigIndex() {
  static const PartitionIndex index = [] {
    PartitionedData pd = PartitionDataset(
        Fleet(),
        {.spatial_partitions = 1024, .temporal_partitions = 64},
        bench::PaperUniverse());
    return PartitionIndex(std::move(pd.ranges));
  }();
  return index;
}

void BM_IndexLookupTimeSelective(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  Rng rng(1);
  const double time_frac = static_cast<double>(state.range(0)) / 100.0;
  const STRange query = SampleQueryInstance(
      {{universe.Width() * 0.2, universe.Height() * 0.2,
        universe.Duration() * time_frac}},
      universe, rng);
  for (auto _ : state) {
    auto involved = BigIndex().InvolvedPartitions(query);
    benchmark::DoNotOptimize(involved);
  }
  state.counters["partitions"] =
      static_cast<double>(BigIndex().NumPartitions());
}
BENCHMARK(BM_IndexLookupTimeSelective)->Arg(1)->Arg(10)->Arg(100);

void BM_TrajectoryIndexBuild(benchmark::State& state) {
  ThreadPool pool(4);
  for (auto _ : state) {
    TrajectoryIndex index(SharedReplica(), &pool);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_TrajectoryIndexBuild);

void BM_TrajectoryQuery(benchmark::State& state) {
  const TrajectoryIndex index(SharedReplica());
  const std::int64_t t0 =
      static_cast<std::int64_t>(bench::PaperUniverse().t_min());
  std::size_t scanned = 0;
  for (auto _ : state) {
    const auto result =
        index.Query(SharedReplica(), 7, t0, t0 + 86400 * 7);
    scanned += result.partitions_scanned;
    benchmark::DoNotOptimize(result);
  }
  state.counters["scanned_per_query"] =
      static_cast<double>(scanned) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TrajectoryQuery);

void BM_BatchVsSequentialGrid(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  const int cells = static_cast<int>(state.range(0));
  std::vector<STRange> queries;
  for (int gx = 0; gx < cells; ++gx)
    for (int gy = 0; gy < cells; ++gy)
      queries.push_back(STRange::FromBounds(
          universe.x_min() + universe.Width() * gx / cells,
          universe.x_min() + universe.Width() * (gx + 1) / cells,
          universe.y_min() + universe.Height() * gy / cells,
          universe.y_min() + universe.Height() * (gy + 1) / cells,
          universe.t_min(), universe.t_max()));
  double sharing = 0;
  for (auto _ : state) {
    const BatchResult batch = ExecuteBatch(SharedReplica(), queries);
    sharing = static_cast<double>(batch.naive_partition_scans) /
              static_cast<double>(batch.stats.partitions_scanned);
    benchmark::DoNotOptimize(batch);
  }
  state.counters["sharing_factor"] = sharing;
}
BENCHMARK(BM_BatchVsSequentialGrid)->Arg(4)->Arg(8);

void BM_SegmentStoreSave(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "blot_bench_segment_store";
  for (auto _ : state) {
    SegmentStore::Save(SharedReplica(), dir);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * SharedReplica().StorageBytes()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreSave);

void BM_SegmentStoreLoad(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "blot_bench_segment_store2";
  SegmentStore::Save(SharedReplica(), dir);
  for (auto _ : state) {
    Replica replica = SegmentStore::Load(dir);
    benchmark::DoNotOptimize(replica);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * SharedReplica().StorageBytes()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentStoreLoad);

// --- Fused decode-filter vs naive decode-then-filter -------------------
//
// One encoded partition, queries of varying selectivity. The naive path
// materializes every record and filters afterwards; the fused path
// filters during deserialization — for columns it decodes the x/y/t
// coordinate columns first and touches attribute columns only for
// matches, for rows it skips the attribute bytes of non-matching rows.

const std::vector<Record>& PartitionRecords() {
  static const std::vector<Record> records = [] {
    // One KD64xT32 partition's worth of spatially-local records.
    return Fleet().FilterByRange(
        STRange::FromBounds(120.8, 121.2, 30.8, 31.2,
                            bench::PaperUniverse().t_min(),
                            bench::PaperUniverse().t_max()));
  }();
  return records;
}

// A query matching roughly `pct`% of the partition's records (by time
// prefix, so both layouts keep their sequential access pattern).
STRange SelectQuery(int pct) {
  const STRange u = bench::PaperUniverse();
  return STRange::FromBounds(
      u.x_min(), u.x_max(), u.y_min(), u.y_max(), u.t_min(),
      u.t_min() + u.Duration() * static_cast<double>(pct) / 100.0);
}

void BM_ScanNaiveDecodeThenFilter(benchmark::State& state) {
  const EncodingScheme scheme = AllEncodingSchemes()[state.range(0)];
  const Bytes data = EncodePartition(PartitionRecords(), scheme);
  const STRange query = SelectQuery(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const std::vector<Record> all = DecodePartition(data, scheme);
    std::vector<Record> matches;
    for (const Record& r : all)
      if (query.Contains(r.Position())) matches.push_back(r);
    benchmark::DoNotOptimize(matches);
  }
  state.SetLabel(scheme.Name());
  state.counters["records"] = static_cast<double>(PartitionRecords().size());
}

void BM_ScanFusedDecodeFilter(benchmark::State& state) {
  const EncodingScheme scheme = AllEncodingSchemes()[state.range(0)];
  const Bytes data = EncodePartition(PartitionRecords(), scheme);
  const STRange query = SelectQuery(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    std::vector<Record> matches = DecodePartitionInRange(data, scheme, query);
    benchmark::DoNotOptimize(matches);
  }
  state.SetLabel(scheme.Name());
  state.counters["records"] = static_cast<double>(PartitionRecords().size());
}

// Scheme index: 0 = ROW-PLAIN, 4 = COL-SNAPPY (AllEncodingSchemes order);
// selectivity 1%, 10%, 100% of the partition.
#define FUSED_ARGS                                         \
  ->Args({0, 1})->Args({0, 10})->Args({0, 100})            \
  ->Args({4, 1})->Args({4, 10})->Args({4, 100})
BENCHMARK(BM_ScanNaiveDecodeThenFilter) FUSED_ARGS;
BENCHMARK(BM_ScanFusedDecodeFilter) FUSED_ARGS;
#undef FUSED_ARGS

// --- Vectorized scan engine ---------------------------------------------
//
// Kernel-level scalar-vs-SIMD ratios and blocked-scan pruned-vs-unpruned
// ratios. Arg 0 selects the engine (0 = scalar, 1 = the best engine this
// binary + CPU supports) or the pruning mode (0 = off, 1 = on); ratios
// between the two runs of the same binary are machine-independent.

simd::ScanEngine BenchEngine(std::int64_t arg) {
  return arg == 0 ? simd::ScanEngine::kScalar : simd::DetectScanEngine();
}

// Args: {engine, column}. Column 0 is the partition's oid column —
// records are grouped per object, so its deltas are almost all zero:
// the dense single-byte-varint shape the vector fast path targets, and
// the tracked ratio. Column 1 is the time column, whose multi-byte
// deltas mostly fall back to the scalar step — kept as untracked
// context so a fast-path regression can't hide behind the mixed shape.
void BM_DecodeDeltaKernel(benchmark::State& state) {
  const simd::ScanEngine engine = BenchEngine(state.range(0));
  std::vector<std::int64_t> values;
  for (const Record& r : PartitionRecords())
    values.push_back(state.range(1) == 0 ? std::int64_t(r.oid) : r.time);
  ByteWriter writer;
  EncodeDeltaColumn(writer, values);
  const Bytes data = writer.buffer();
  std::vector<std::int64_t> out(values.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::DecodeZigZagDeltaI64(
        engine, data.data(), data.data() + data.size(), out.data(),
        out.size()));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::string(simd::ScanEngineName(engine)) +
                 (state.range(1) == 0 ? "/oid" : "/time"));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_DecodeDeltaKernel)
    ->Args({0, 0})->Args({1, 0})->Args({0, 1})->Args({1, 1});

void BM_FilterRangeKernel(benchmark::State& state) {
  const simd::ScanEngine engine = BenchEngine(state.range(0));
  std::vector<double> xs, ys, ts;
  for (const Record& r : PartitionRecords()) {
    xs.push_back(r.x);
    ys.push_back(r.y);
    ts.push_back(static_cast<double>(r.time));
  }
  const STRange q = SelectQuery(10);
  const double bounds[6] = {q.x_min(), q.x_max(), q.y_min(),
                            q.y_max(), q.t_min(), q.t_max()};
  std::vector<std::uint64_t> bitmap((xs.size() + 63) / 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::FilterRangeBitmap(
        engine, xs.data(), ys.data(), ts.data(), xs.size(), bounds,
        bitmap.data()));
    benchmark::DoNotOptimize(bitmap.data());
  }
  state.SetLabel(std::string(simd::ScanEngineName(engine)));
  state.counters["records"] = static_cast<double>(xs.size());
}
BENCHMARK(BM_FilterRangeKernel)->Arg(0)->Arg(1);

// Blocked scan with the zone map on/off over time-sorted, uncompressed
// partitions and a 10% time window: sorted data gives blocks tight
// disjoint time zones, and no codec keeps decode (the work pruning
// saves) dominant. Args: {prune, selectivity pct}.
const std::vector<Record>& SortedPartitionRecords() {
  static const std::vector<Record> records = [] {
    std::vector<Record> sorted = PartitionRecords();
    std::sort(sorted.begin(), sorted.end(),
              [](const Record& a, const Record& b) { return a.time < b.time; });
    return sorted;
  }();
  return records;
}

void BM_ScanBlockedZoneMap(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  const EncodingScheme scheme{Layout::kRow, CodecKind::kNone};
  const Bytes data = EncodePartition(SortedPartitionRecords(), scheme);
  const STRange query = SelectQuery(static_cast<int>(state.range(1)));
  ScanCounters counters;
  for (auto _ : state) {
    std::vector<Record> matches =
        DecodePartitionInRange(data, scheme, query, nullptr,
                               LayoutFormat::kBlocked, prune, &counters);
    benchmark::DoNotOptimize(matches);
  }
  state.SetLabel(prune ? "pruned" : "unpruned");
  state.counters["blocks_pruned_pct"] =
      counters.blocks_total == 0
          ? 0.0
          : 100.0 * static_cast<double>(counters.blocks_pruned) /
                static_cast<double>(counters.blocks_total);
}
BENCHMARK(BM_ScanBlockedZoneMap)->Args({0, 10})->Args({1, 10});

// End-to-end query path with the cache disabled: Replica::Execute runs
// the fused kernel per involved partition.
void BM_ExecuteFusedSelective(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  Rng rng(7);
  const STRange query = SampleQueryInstance(
      {{universe.Width() * 0.05, universe.Height() * 0.05,
        universe.Duration() * 0.05}},
      universe, rng);
  for (auto _ : state) {
    const QueryResult result = SharedReplica().Execute(query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecuteFusedSelective);

}  // namespace

namespace bench {
namespace {

// Tracked metrics for the CI perf tripwire: ratios between runs of this
// same binary, so they hold across machines. The fused-kernel speedups
// are the ones this bench exists to defend.
void DeriveTracked(const CaptureReporter& reporter, BenchReport& report) {
  const auto ratio = [&](const char* name, const std::string& numerator,
                         const std::string& denominator) {
    const double num = reporter.RealNs(numerator);
    const double den = reporter.RealNs(denominator);
    if (num > 0 && den > 0) report.Metric(name, num / den, /*tracked=*/true);
  };
  ratio("fused_speedup_row_1pct", "BM_ScanNaiveDecodeThenFilter/0/1",
        "BM_ScanFusedDecodeFilter/0/1");
  ratio("fused_speedup_col_1pct", "BM_ScanNaiveDecodeThenFilter/4/1",
        "BM_ScanFusedDecodeFilter/4/1");
  ratio("index_time_bucketing_speedup", "BM_IndexLookupTimeSelective/100",
        "BM_IndexLookupTimeSelective/1");
  // Scan-engine ratios: scalar over the best engine / unpruned over
  // pruned, runs of this same binary on the same data.
  ratio("simd_speedup_delta_decode", "BM_DecodeDeltaKernel/0/0",
        "BM_DecodeDeltaKernel/1/0");
  ratio("simd_speedup_range_filter", "BM_FilterRangeKernel/0",
        "BM_FilterRangeKernel/1");
  ratio("zonemap_prune_speedup_row_10pct", "BM_ScanBlockedZoneMap/0/10",
        "BM_ScanBlockedZoneMap/1/10");
}

}  // namespace
}  // namespace bench
}  // namespace blot

int main(int argc, char** argv) {
  return blot::bench::RunAndReport(argc, argv, "micro_access_paths",
                                   "BENCH_access_paths.json",
                                   blot::bench::DeriveTracked);
}
