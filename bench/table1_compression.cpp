// Table I reproduction: compression ratio of each encoding scheme,
// measured on partition-sized chunks of the synthetic taxi trace, next to
// the paper's values for the real Shanghai dataset.
//
// Expected shape (paper): ratios fall from PLAIN -> SNAPPY -> GZIP ->
// LZMA2, and the column layout beats the row layout under every codec.
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "blot/encoding_scheme.h"

using namespace blot;

int main() {
  // Encode a realistic partition: records co-located in space and time
  // (that locality is what the column encodings exploit).
  Dataset sample = bench::MakeSample(120000);
  sample.SortByTime();

  const std::map<std::string, double> paper = {
      {"ROW-PLAIN", 1.0},    {"COL-PLAIN", 0.557},  {"ROW-SNAPPY", 0.485},
      {"COL-SNAPPY", 0.312}, {"ROW-GZIP", 0.283},   {"COL-GZIP", 0.179},
      {"ROW-LZMA", 0.213},   {"COL-LZMA", 0.156}};

  std::printf("Table I: compression ratio per encoding scheme\n");
  std::printf("(measured on %zu synthetic taxi records; paper values are "
              "for the\n real Shanghai GPS log, so absolute ratios differ "
              "— the ordering is the claim)\n\n",
              sample.size());
  std::printf("%-12s %10s %10s\n", "encoding", "measured", "paper");
  bench::PrintRule('-', 36);
  double previous = 2.0;
  bool ordering_holds = true;
  for (const char* name :
       {"ROW-PLAIN", "ROW-SNAPPY", "ROW-GZIP", "ROW-LZMA"}) {
    const double measured = MeasureCompressionRatio(
        sample.records(), EncodingScheme::FromName(name));
    std::printf("%-12s %10.3f %10.3f\n", name, measured, paper.at(name));
    if (measured > previous) ordering_holds = false;
    previous = measured;
  }
  for (const char* name : {"COL-SNAPPY", "COL-GZIP", "COL-LZMA"}) {
    const double measured = MeasureCompressionRatio(
        sample.records(), EncodingScheme::FromName(name));
    const double row_counterpart = MeasureCompressionRatio(
        sample.records(),
        EncodingScheme::FromName(std::string("ROW") +
                                 (name + 3)));
    std::printf("%-12s %10.3f %10.3f   (row counterpart %.3f)\n", name,
                measured, paper.at(name), row_counterpart);
    if (measured > row_counterpart) ordering_holds = false;
  }
  bench::PrintRule('-', 36);
  std::printf("Ordering matches the paper (PLAIN > SNAPPY > GZIP > LZMA, "
              "COL < ROW): %s\n",
              ordering_holds ? "YES" : "NO");
  return ordering_holds ? 0 : 1;
}
