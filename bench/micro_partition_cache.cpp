// Decoded-partition cache sweep on a zipfian query workload.
//
// A skewed (hotspot-heavy) query stream repeatedly touches the same
// involved partitions; the decoded-partition cache converts those repeat
// decodes (checksum + decompress + deserialize) into pinned-pointer
// lookups. This bench sweeps the cache byte budget from 0 (disabled —
// the fused decode-filter path) upward and reports wall time, hit ratio
// and eviction counts per budget, plus the speedup of each budget over
// the uncached baseline.
//
// Writes machine-readable results to BENCH_partition_cache.json (or
// argv[1], schema blot.bench.v1); the acceptance bar is >= 3x speedup
// for a budget that holds the hot working set. The CI tripwire tracks
// `speedup_cache_on_vs_off`; the per-budget sweep rides along in
// `extra.sweep`.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "blot/replica.h"
#include "core/partition_cache.h"

using namespace blot;

namespace {

struct SweepPoint {
  std::size_t budget_mb = 0;
  double total_ms = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t records_matched = 0;
};

double RunWorkload(const Replica& replica,
                   const std::vector<STRange>& accesses,
                   std::uint64_t* records_matched) {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t matched = 0;
  for (const STRange& q : accesses) matched += replica.Execute(q).records.size();
  const auto end = std::chrono::steady_clock::now();
  *records_matched = matched;
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      bench::OutputPath(argc, argv, "BENCH_partition_cache.json");

  constexpr std::size_t kRecords = 150000;
  constexpr std::size_t kDistinctQueries = 64;
  constexpr std::size_t kAccesses = 800;
  constexpr double kZipfS = 1.1;

  const Dataset dataset = bench::MakeSample(kRecords);
  const STRange universe = bench::PaperUniverse();
  const ReplicaConfig config{
      {.spatial_partitions = 64, .temporal_partitions = 32},
      EncodingScheme::FromName("COL-GZIP")};
  std::printf("building %s over %zu records...\n", config.Name().c_str(),
              dataset.size());
  const Replica replica = Replica::Build(dataset, config, universe);

  // The distinct query cells: small hotspot boxes. The access stream
  // draws cells zipf(s)-ranked, so a handful of cells (and the handful
  // of partitions under them) receive most of the traffic.
  Rng rng(20071113);
  const GroupedQuery shape{{universe.Width() * 0.05, universe.Height() * 0.05,
                            universe.Duration() * 0.10}};
  std::vector<STRange> cells;
  for (std::size_t i = 0; i < kDistinctQueries; ++i)
    cells.push_back(SampleQueryInstance(shape, universe, rng));
  std::vector<STRange> accesses;
  for (std::size_t i = 0; i < kAccesses; ++i)
    accesses.push_back(cells[rng.NextZipf(kDistinctQueries, kZipfS)]);

  PartitionCache& cache = PartitionCache::Global();
  const std::vector<std::size_t> budgets_mb = {0, 4, 16, 64};
  std::vector<SweepPoint> sweep;
  std::printf("%-10s | %10s %12s %9s %9s %9s\n", "budget", "total ms",
              "ms/query", "hit%", "evict", "speedup");
  bench::PrintRule('-', 68);

  for (const std::size_t mb : budgets_mb) {
    cache.Configure(static_cast<std::uint64_t>(mb) << 20);
    cache.Clear();
    cache.ResetStats();

    SweepPoint point;
    point.budget_mb = mb;
    // Best of 3 runs to shrug off scheduler noise; stats accumulate
    // across runs, the hit ratio converges to steady state.
    point.total_ms = RunWorkload(replica, accesses, &point.records_matched);
    for (int rep = 0; rep < 2; ++rep) {
      std::uint64_t matched = 0;
      point.total_ms =
          std::min(point.total_ms, RunWorkload(replica, accesses, &matched));
    }
    const PartitionCache::Stats stats = cache.stats();
    point.hit_ratio = stats.HitRatio();
    point.hits = stats.hits;
    point.misses = stats.misses;
    point.evictions = stats.evictions;
    point.resident_bytes = stats.bytes;
    sweep.push_back(point);

    const double speedup = sweep.front().total_ms / point.total_ms;
    std::printf("%7zu MB | %10.1f %12.3f %8.1f%% %9llu %8.2fx\n", mb,
                point.total_ms, point.total_ms / kAccesses,
                100.0 * point.hit_ratio,
                static_cast<unsigned long long>(point.evictions), speedup);
  }
  cache.Configure(0);
  bench::PrintRule('-', 68);

  const double best_speedup = sweep.front().total_ms / sweep.back().total_ms;
  std::printf("cache-on (%zu MB) vs cache-off: %.2fx  (bar: >= 3x)\n",
              budgets_mb.back(), best_speedup);

  bench::BenchReport report("micro_partition_cache");
  report.Metric("speedup_cache_on_vs_off", best_speedup, /*tracked=*/true);
  for (const SweepPoint& p : sweep) {
    const std::string prefix = "budget_" + std::to_string(p.budget_mb) + "mb:";
    report.Metric(prefix + "ms_per_query", p.total_ms / kAccesses);
    report.Metric(prefix + "hit_ratio", p.hit_ratio);
    report.Metric(prefix + "speedup_vs_uncached",
                  sweep.front().total_ms / p.total_ms);
  }
  report.Info("dataset_records", static_cast<std::uint64_t>(dataset.size()));
  report.Info("replica", config.Name());
  report.Info("distinct_query_cells",
              static_cast<std::uint64_t>(kDistinctQueries));
  report.Info("accesses", static_cast<std::uint64_t>(kAccesses));
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", kZipfS);
    report.Info("zipf_s", buf);
  }
  std::string sweep_json = "[\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "      {\"budget_mb\": %zu, \"total_ms\": %.2f, \"ms_per_query\": "
        "%.4f, \"hit_ratio\": %.4f, \"hits\": %llu, \"misses\": %llu, "
        "\"evictions\": %llu, \"resident_bytes\": %llu, "
        "\"records_matched\": %llu, \"speedup_vs_uncached\": %.3f}%s\n",
        p.budget_mb, p.total_ms, p.total_ms / kAccesses, p.hit_ratio,
        static_cast<unsigned long long>(p.hits),
        static_cast<unsigned long long>(p.misses),
        static_cast<unsigned long long>(p.evictions),
        static_cast<unsigned long long>(p.resident_bytes),
        static_cast<unsigned long long>(p.records_matched),
        sweep.front().total_ms / p.total_ms,
        i + 1 < sweep.size() ? "," : "");
    sweep_json += line;
  }
  sweep_json += "    ]";
  report.Extra("sweep", std::move(sweep_json));
  if (!report.Write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());

  // Results must be identical whether or not the cache served them.
  bool consistent = true;
  for (const SweepPoint& p : sweep)
    if (p.records_matched != sweep.front().records_matched) consistent = false;
  std::printf("result consistency across budgets: %s\n",
              consistent ? "YES" : "NO");
  return consistent ? 0 : 1;
}
