// Ablations for the design choices DESIGN.md calls out:
//
//   1. Eq. 4 vs Eq. 3 linking constraints in the MIP — the paper argues
//      the m aggregated constraints beat the n*m disaggregated ones; we
//      time both on the same instances.
//   2. Dominance pruning (Section III-C2) — candidate-set shrinkage and
//      its effect on MIP solve time, with the optimum provably unchanged.
//   3. Workload reduction via k-means (Section III-C1) — cost-matrix and
//      solve-time savings versus the selection quality loss when a
//      240-query log is compressed to 8 grouped queries.
//   4. k-d tree vs uniform grid partitioning — the skew a grid suffers on
//      clustered data and what it does to selection quality.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/mip_selection.h"

using namespace blot;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Workload NoisyWorkload(const STRange& universe, std::size_t n, Rng& rng) {
  // Queries drawn around the 8 canonical shapes with lognormal jitter —
  // a realistic query log to feed the k-means reduction.
  const Workload base = bench::WildlyVariedWorkload(universe);
  Workload workload;
  for (std::size_t i = 0; i < n; ++i) {
    const WeightedQuery& proto =
        base.queries()[rng.NextUint64(base.size())];
    const auto jitter = [&rng](double v) {
      return v * std::exp(rng.NextGaussian() * 0.25);
    };
    workload.Add({{std::min(jitter(proto.query.size.w), 2.0),
                   std::min(jitter(proto.query.size.h), 2.0),
                   std::min(jitter(proto.query.size.t),
                            86400.0 * 28)}},
                 1.0);
  }
  return workload;
}

}  // namespace

int main() {
  const Dataset sample = bench::MakeSample(10000);
  const STRange universe = bench::PaperUniverse();
  const CostModel model{EnvironmentModel::AmazonS3Emr()};
  const auto ratios =
      MeasureCompressionRatios(sample, AllEncodingSchemes(), 10000);
  const std::uint64_t total_records = 10 * bench::kPaperRecords;
  const Workload workload = bench::WildlyVariedWorkload(universe);

  CandidateMatrixResult matrix = BuildSelectionInputGrouped(
      sample, universe, bench::TrimmedPartitionings(), AllEncodingSchemes(),
      ratios, total_records, workload, model, 1.0);
  bench::EqualizeQueryContributions(matrix.input);
  SelectionInput unconstrained = matrix.input;
  unconstrained.budget_bytes = 1e18;
  matrix.input.budget_bytes =
      3.0 * SelectBestSingle(unconstrained).storage_used;

  // --- Ablation 1: aggregated vs disaggregated linking constraints ---
  std::printf("Ablation 1: MIP linking constraints (Eq. 4 vs Eq. 3)\n");
  for (const bool disaggregated : {false, true}) {
    MipSelectionOptions options;
    options.use_disaggregated_constraints = disaggregated;
    const double start = NowSeconds();
    const SelectionResult r = SelectMip(matrix.input, options);
    std::printf("  %-24s  %8.2f s   cost %.4f   nodes %zu\n",
                disaggregated ? "Eq. 3 (n*m constraints)"
                              : "Eq. 4 (m constraints)",
                NowSeconds() - start, r.workload_cost, r.nodes_explored);
  }

  // --- Ablation 2: dominance pruning ---
  std::printf("\nAblation 2: dominance pruning (Section III-C2)\n");
  {
    const double t0 = NowSeconds();
    const SelectionResult unpruned = SelectMip(matrix.input);
    const double t_unpruned = NowSeconds() - t0;
    const double t1 = NowSeconds();
    const auto kept = PruneDominated(matrix.input);
    SelectionInput reduced = RestrictCandidates(matrix.input, kept);
    const SelectionResult pruned = SelectMip(reduced);
    const double t_pruned = NowSeconds() - t1;
    std::printf("  candidates %3zu -> %3zu; MIP %6.2f s -> %6.2f s "
                "(incl. pruning); optimum %.4f -> %.4f (%s)\n",
                matrix.input.NumReplicas(), kept.size(), t_unpruned,
                t_pruned, unpruned.workload_cost, pruned.workload_cost,
                std::abs(unpruned.workload_cost - pruned.workload_cost) <
                        1e-6 * unpruned.workload_cost + 1e-9
                    ? "unchanged"
                    : "CHANGED!");
  }

  // --- Ablation 3: workload reduction by k-means ---
  std::printf("\nAblation 3: workload reduction (Section III-C1)\n");
  {
    Rng rng(77);
    const Workload log = NoisyWorkload(universe, 240, rng);
    // Full pipeline on the raw log: cost-matrix estimation + selection.
    const double t0 = NowSeconds();
    CandidateMatrixResult raw = BuildSelectionInputGrouped(
        sample, universe, bench::TrimmedPartitionings(),
        AllEncodingSchemes(), ratios, total_records, log, model,
        matrix.input.budget_bytes);
    bench::EqualizeQueryContributions(raw.input);
    const SelectionResult full_run = SelectGreedy(raw.input);
    const double t_full = NowSeconds() - t0;

    // Pipeline with the log first compressed to 8 grouped queries.
    const double t1 = NowSeconds();
    Rng kmeans_rng(78);
    const Workload reduced_workload = ReduceWorkload(log, 8, kmeans_rng);
    CandidateMatrixResult reduced = BuildSelectionInputGrouped(
        sample, universe, bench::TrimmedPartitionings(),
        AllEncodingSchemes(), ratios, total_records, reduced_workload,
        model, matrix.input.budget_bytes);
    bench::EqualizeQueryContributions(reduced.input);
    const SelectionResult reduced_run = SelectGreedy(reduced.input);
    const double t_reduced = NowSeconds() - t1;

    // Evaluate the reduced-workload selection against the FULL log.
    const double cost_of_reduced_choice =
        SubsetWorkloadCost(raw.input, reduced_run.chosen);
    std::printf("  240-query log:     build+select %6.2f s, cost %.4f\n",
                t_full, full_run.workload_cost);
    std::printf("  reduced to 8:      build+select %6.2f s, same selection "
                "evaluated on full log: %.4f (%.1f%% worse)\n",
                t_reduced, cost_of_reduced_choice,
                100.0 * (cost_of_reduced_choice / full_run.workload_cost -
                         1.0));
  }

  // --- Ablation 4: k-d tree vs uniform grid ---
  std::printf("\nAblation 4: k-d tree vs uniform grid partitioning\n");
  {
    std::vector<PartitioningSpec> grid_specs = bench::TrimmedPartitionings();
    for (PartitioningSpec& spec : grid_specs)
      spec.method = SpatialMethod::kGrid;
    CandidateMatrixResult grid = BuildSelectionInputGrouped(
        sample, universe, grid_specs, AllEncodingSchemes(), ratios,
        total_records, workload, model, matrix.input.budget_bytes);
    // Evaluate both candidate families under the SAME weights (from the
    // k-d instance) so the workload costs are comparable.
    grid.input.weights = matrix.input.weights;
    const SelectionResult kd = SelectGreedy(matrix.input);
    const SelectionResult gr = SelectGreedy(grid.input);
    const PartitionedData kd_pd = PartitionDataset(
        sample, bench::TrimmedPartitionings()[5], universe);
    const PartitionedData gr_pd =
        PartitionDataset(sample, grid_specs[5], universe);
    std::printf("  partition skew (%s): kd %.2f vs grid %.2f\n",
                grid_specs[5].Name().c_str(),
                PartitionSkew(kd_pd, sample.size()),
                PartitionSkew(gr_pd, sample.size()));
    std::printf("  greedy workload cost: kd %.4f vs grid %.4f "
                "(grid %.1f%% worse)\n",
                kd.workload_cost, gr.workload_cost,
                100.0 * (gr.workload_cost / kd.workload_cost - 1.0));
  }
  return 0;
}
