// Figure 4 reproduction: relative overall query cost (vs the ideal case)
// of Single / Greedy / MIP as the storage budget varies.
//
// The x-axis is the budget relative to the base budget used in Figure 6 —
// the storage of 3 exact copies of the optimal single replica. Shapes to
// reproduce: MIP stays close to the ideal (1.0) at every budget, the
// greedy approximation ratio drops sharply as the budget grows and is
// below ~1.2 once the relative budget exceeds 1, and Single cannot use
// the extra space at all.
#include <cstdio>

#include "bench_common.h"
#include "core/mip_selection.h"

using namespace blot;

int main() {
  const Dataset sample = bench::MakeSample(15000);
  const STRange universe = bench::PaperUniverse();
  const Workload workload = bench::WildlyVariedWorkload(universe);
  const CostModel model{EnvironmentModel::AmazonS3Emr()};
  const auto ratios =
      MeasureCompressionRatios(sample, AllEncodingSchemes(), 15000);

  // 37 GB-scale dataset: large enough that partition granularity matters
  // against S3's task-startup costs.
  const std::uint64_t total_records = 10 * bench::kPaperRecords;

  CandidateMatrixResult matrix = BuildSelectionInputGrouped(
      sample, universe, bench::TrimmedPartitionings(), AllEncodingSchemes(),
      ratios, total_records, workload, model, /*budget*/ 1.0);
  // Equal-contribution weights: each grouped query matters equally in the
  // overall cost (w_i = 1 / its ideal cost), so the full-scan query does
  // not drown out the configuration-sensitive ones. See EXPERIMENTS.md.
  bench::EqualizeQueryContributions(matrix.input);

  // Base budget: 3 exact copies of the optimal single replica.
  SelectionInput unconstrained = matrix.input;
  unconstrained.budget_bytes = 1e18;
  const SelectionResult best_single_any = SelectBestSingle(unconstrained);
  const double base_budget = 3.0 * best_single_any.storage_used;
  const double ideal = SelectIdeal(matrix.input).workload_cost;

  std::printf("Figure 4: relative overall query cost vs storage budget\n");
  std::printf("(base budget = 3 x optimal single replica = %.1f GB; costs "
              "relative to the ideal case = 1.0)\n\n",
              base_budget / 1e9);
  std::printf("%8s | %10s %10s %10s %10s\n", "budget", "Single", "Greedy",
              "MIP", "Ideal");
  bench::PrintRule('-', 56);
  bool mip_leads = true;
  bool mip_near_ideal_when_funded = true;
  double greedy_at_or_above_1 = 0.0;
  for (const double relative :
       {0.5, 0.625, 0.75, 0.875, 1.0, 1.25, 1.5, 1.75, 2.0}) {
    SelectionInput instance = matrix.input;
    instance.budget_bytes = base_budget * relative;
    const SelectionResult single = SelectBestSingle(instance);
    const SelectionResult greedy = SelectGreedy(instance);
    const SelectionResult mip = SelectMip(instance);
    std::printf("%7.3fx | %10.3f %10.3f %10.3f %10.3f\n", relative,
                single.workload_cost / ideal, greedy.workload_cost / ideal,
                mip.workload_cost / ideal, 1.0);
    if (mip.workload_cost > greedy.workload_cost + 1e-6 ||
        mip.workload_cost > single.workload_cost + 1e-6)
      mip_leads = false;
    if (relative >= 1.0) {
      greedy_at_or_above_1 =
          std::max(greedy_at_or_above_1, greedy.workload_cost / ideal);
      if (mip.workload_cost / ideal > 1.1) mip_near_ideal_when_funded = false;
    }
  }
  bench::PrintRule('-', 56);
  std::printf("\nMIP <= Greedy <= Single at every budget: %s\n",
              mip_leads ? "YES" : "NO");
  std::printf("MIP within 10%% of ideal once relative budget >= 1: %s\n",
              mip_near_ideal_when_funded ? "YES" : "NO");
  std::printf("Greedy approximation ratio < 1.2 once relative budget >= 1 "
              "(paper's claim): %s (worst %.3f)\n",
              greedy_at_or_above_1 < 1.2 ? "YES" : "NO",
              greedy_at_or_above_1);
  return 0;
}
