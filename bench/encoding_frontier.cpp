// The encoding trade-off frontier, and how access-aware per-partition
// encoding improves on uniform choices.
//
// Two findings framed against the paper:
//   1. In the paper's 2013 IO-bound environments (Table II), stronger
//      compression is a pure win — LZMA2 is both the smallest and the
//      fastest to scan — so uniform COL-LZMA dominates. On a CPU-bound
//      NVMe-class environment the classic ratio/speed trade-off
//      re-emerges, and *no* uniform encoding dominates.
//   2. On the CPU-bound frontier, choosing codecs per partition by
//      workload access frequency (core/access_aware.h) strictly improves
//      on every uniform point at equal storage: hot partitions decode
//      fast, cold ones stay small.
#include <cstdio>

#include "bench_common.h"
#include "core/access_aware.h"

using namespace blot;

int main() {
  Dataset dataset = bench::MakeSample(60000);
  const STRange universe = bench::PaperUniverse();
  const PartitioningSpec spec{.spatial_partitions = 16,
                              .temporal_partitions = 8};

  // Hotspot-heavy workload: frequent small queries + rare full scans.
  Workload workload;
  workload.Add({{universe.Width() * 0.05, universe.Height() * 0.05,
                 universe.Duration() * 0.05}},
               20.0);
  workload.Add({{universe.Width() * 0.3, universe.Height() * 0.3,
                 universe.Duration() * 0.2}},
               2.0);
  workload.Add({universe.Size()}, 0.2);

  std::printf("1. Uniform encodings under two environments "
              "(expected workload scan cost)\n");
  std::printf("   %-12s %12s | %16s %16s\n", "encoding", "size(MiB)",
              "S3+EMR cost(s)", "cpu-bound(s)");
  const CostModel io_model{EnvironmentModel::AmazonS3Emr()};
  const CostModel cpu_model{EnvironmentModel::CpuBoundLocal()};
  double best_io = 1e300, best_cpu = 1e300;
  std::string best_io_name, best_cpu_name;
  std::uint64_t floor_bytes = 0, ceil_bytes = 0;
  for (const char* name :
       {"ROW-PLAIN", "ROW-SNAPPY", "ROW-GZIP", "ROW-LZMA"}) {
    const Replica replica = Replica::Build(
        dataset, {spec, EncodingScheme::FromName(name)}, universe);
    const ReplicaSketch sketch = ReplicaSketch::FromReplica(replica);
    const double io = io_model.WorkloadCostMs({sketch}, workload);
    const double cpu = cpu_model.WorkloadCostMs({sketch}, workload);
    std::printf("   %-12s %12.2f | %16.1f %16.3f\n", name,
                double(replica.StorageBytes()) / (1 << 20), io / 1000.0,
                cpu / 1000.0);
    if (io < best_io) {
      best_io = io;
      best_io_name = name;
    }
    if (cpu < best_cpu) {
      best_cpu = cpu;
      best_cpu_name = name;
    }
    if (std::string(name) == "ROW-LZMA") floor_bytes = replica.StorageBytes();
    if (std::string(name) == "ROW-PLAIN") ceil_bytes = replica.StorageBytes();
  }
  std::printf("   cheapest in S3+EMR: %s (compression is a pure win when "
              "IO-bound);\n   cheapest cpu-bound: %s (speed wins when "
              "storage is free)\n\n",
              best_io_name.c_str(), best_cpu_name.c_str());

  std::printf("2. Access-aware per-partition encoding, cpu-bound "
              "environment\n");
  std::printf("   %-22s %12s %16s\n", "plan", "size(MiB)", "cost(s)");
  for (const double fraction : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    const std::uint64_t budget =
        floor_bytes +
        static_cast<std::uint64_t>(fraction *
                                   double(ceil_bytes - floor_bytes));
    const AccessAwareBuildResult result =
        BuildAccessAwareReplica(dataset, spec, Layout::kRow, universe,
                                workload, cpu_model, budget);
    // plan.expected_cost_ms is the per-partition-codec equivalent of
    // WorkloadCostMs (the single-scheme cost model cannot price a hybrid
    // replica).
    std::printf("   budget floor+%3.0f%%    %12.2f %16.3f\n",
                fraction * 100,
                double(result.replica.StorageBytes()) / (1 << 20),
                result.plan.expected_cost_ms / 1000.0);
  }
  std::printf("\nThe access-aware plans trace a concave frontier between "
              "the uniform\nextremes: a little extra storage buys most of "
              "the speed (hot partitions\nupgrade first), converging to "
              "uniform ROW-PLAIN performance at full budget.\n");
  return 0;
}
