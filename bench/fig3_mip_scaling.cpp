// Figure 3 reproduction: computation time of the exact MIP solution as a
// function of (a) workload size and (b) candidate-replica count.
//
// The paper's claim: solve time grows sharply (exponentially in the worst
// case) with both inputs, motivating the input-size reductions of
// Section III-C and the greedy fallback. Greedy times are printed for
// contrast; they stay polynomial and effectively flat.
//
// Set BLOT_FIG3_LARGE=1 to run the paper-sized grid (up to 400 queries /
// 150 replicas); default sizes keep the bench under ~2 minutes.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "core/mip_selection.h"

using namespace blot;

namespace {

// A workload of `n` grouped queries with log-uniform range sizes.
Workload RandomWorkload(const STRange& universe, std::size_t n, Rng& rng) {
  Workload workload;
  for (std::size_t i = 0; i < n; ++i) {
    const double fx = std::exp(rng.NextDouble(std::log(0.004), 0.0));
    const double fy = std::exp(rng.NextDouble(std::log(0.004), 0.0));
    const double ft = std::exp(rng.NextDouble(std::log(0.002), 0.0));
    workload.Add({{universe.Width() * fx, universe.Height() * fy,
                   universe.Duration() * ft}},
                 rng.NextDouble(0.5, 2.0));
  }
  return workload;
}

// Deterministically subsamples `m` columns of a selection instance.
SelectionInput Subsample(const SelectionInput& input, std::size_t m,
                         Rng& rng) {
  std::vector<std::size_t> keep = rng.Permutation(input.NumReplicas());
  keep.resize(m);
  std::sort(keep.begin(), keep.end());
  return RestrictCandidates(input, keep);
}

double MinStorage(const SelectionInput& input) {
  double lowest = input.storage_bytes[0];
  for (double s : input.storage_bytes) lowest = std::min(lowest, s);
  return lowest;
}

}  // namespace

int main() {
  const bool large = std::getenv("BLOT_FIG3_LARGE") != nullptr;
  const Dataset sample = bench::MakeSample(8000);
  const STRange universe = bench::PaperUniverse();
  const CostModel model{EnvironmentModel::AmazonS3Emr()};
  const auto ratios =
      MeasureCompressionRatios(sample, AllEncodingSchemes(), 8000);

  // Candidate pool: k-d tree and grid variants x 7 encodings.
  std::vector<PartitioningSpec> partitionings = bench::TrimmedPartitionings();
  {
    std::vector<PartitioningSpec> grids = bench::TrimmedPartitionings();
    for (PartitioningSpec& spec : grids) {
      spec.method = SpatialMethod::kGrid;
      partitionings.push_back(spec);
    }
  }

  const std::vector<std::size_t> workload_sizes =
      large ? std::vector<std::size_t>{50, 100, 200, 300, 400}
            : std::vector<std::size_t>{25, 50, 100, 150};
  const std::vector<std::size_t> replica_counts_a =
      large ? std::vector<std::size_t>{40, 80, 120}
            : std::vector<std::size_t>{20, 40, 60};
  const std::vector<std::size_t> replica_counts_b =
      large ? std::vector<std::size_t>{30, 60, 90, 120, 150}
            : std::vector<std::size_t>{20, 40, 60, 80, 100};
  const std::vector<std::size_t> workload_sizes_b =
      large ? std::vector<std::size_t>{100, 200, 300}
            : std::vector<std::size_t>{25, 50, 100};

  Rng rng(333);
  const std::size_t max_n =
      std::max(workload_sizes.back(), workload_sizes_b.back());
  const Workload full_workload = RandomWorkload(universe, max_n, rng);

  std::printf("Building the full cost matrix (%zu queries x %zu "
              "candidates)...\n\n",
              max_n, partitionings.size() * 7);
  const CandidateMatrixResult full = BuildSelectionInputGrouped(
      sample, universe, partitionings, AllEncodingSchemes(), ratios,
      bench::kPaperRecords, full_workload, model,
      /*budget placeholder*/ 1.0);

  const auto make_instance = [&](std::size_t n, std::size_t m) {
    SelectionInput instance;
    instance.cost.assign(full.input.cost.begin(),
                         full.input.cost.begin() + n);
    instance.weights.assign(full.input.weights.begin(),
                            full.input.weights.begin() + n);
    instance.storage_bytes = full.input.storage_bytes;
    Rng sub_rng(1000 + 7 * n + m);
    instance.budget_bytes = 1.0;  // replaced below
    SelectionInput reduced = Subsample(instance, m, sub_rng);
    reduced.budget_bytes = 3.0 * MinStorage(reduced) + 1e6;
    return reduced;
  };

  std::printf("Figure 3a: MIP computation time vs workload size\n");
  std::printf("%10s", "#queries");
  for (std::size_t m : replica_counts_a) std::printf(" | m=%3zu: MIP(s) greedy(s) nodes", m);
  std::printf("\n");
  bench::PrintRule('-', 100);
  for (std::size_t n : workload_sizes) {
    std::printf("%10zu", n);
    for (std::size_t m : replica_counts_a) {
      const SelectionInput instance = make_instance(n, m);
      const SelectionResult mip = SelectMip(instance);
      const SelectionResult greedy = SelectGreedy(instance);
      std::printf(" |    %10.2f %9.4f %5zu", mip.solve_seconds,
                  greedy.solve_seconds, mip.nodes_explored);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 3b: MIP computation time vs candidate replicas\n");
  std::printf("%10s", "#replicas");
  for (std::size_t n : workload_sizes_b) std::printf(" | n=%3zu: MIP(s) greedy(s) nodes", n);
  std::printf("\n");
  bench::PrintRule('-', 100);
  for (std::size_t m : replica_counts_b) {
    std::printf("%10zu", m);
    for (std::size_t n : workload_sizes_b) {
      const SelectionInput instance = make_instance(n, m);
      const SelectionResult mip = SelectMip(instance);
      const SelectionResult greedy = SelectGreedy(instance);
      std::printf(" |    %10.2f %9.4f %5zu", mip.solve_seconds,
                  greedy.solve_seconds, mip.nodes_explored);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape to compare with the paper: MIP time climbs steeply with both\n"
      "inputs while greedy stays flat — \"when the input workload or the\n"
      "candidate replica set is too large, it is desirable to switch to the\n"
      "greedy algorithm\".\n");
  return 0;
}
