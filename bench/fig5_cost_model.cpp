// Figure 5 reproduction: measured Cost(q, p) against partition size with
// the fitted lines of Eq. 6, for both execution environments.
//
// The paper's figure plots one point cloud per encoding plus fitted
// lines; this bench prints, for three representative encodings per
// environment (as in Fig. 5c/5d), the measured mean cost and the fitted
// prediction at each partition size, plus the fit quality. The shape to
// reproduce: costs are linear in partition size, with the S3 environment
// dominated by its intercept (~30 s) and the local cluster by its slope.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "simenv/measurement.h"

using namespace blot;

int main() {
  bool well_fitted = true;
  for (const EnvironmentModel& env :
       {EnvironmentModel::AmazonS3Emr(), EnvironmentModel::LocalHadoop()}) {
    std::printf("Figure 5: Cost(q,p) vs partition size — %s\n",
                env.name().c_str());
    Simulator sim(env, {.noise_fraction = 0.04, .seed = 55});
    for (const char* name : {"ROW-PLAIN", "ROW-GZIP", "COL-LZMA"}) {
      const EncodingScheme scheme = EncodingScheme::FromName(name);
      const MeasuredScanParams measured = MeasureScanParams(sim, scheme);
      std::printf("\n  %s   (fit: cost = %.2f ms/krec * size + %.0f ms, "
                  "R^2 = %.4f)\n",
                  name, measured.params.scan_ms_per_krecord,
                  measured.params.extra_ms, measured.r_squared);
      std::printf("  %14s %16s %16s %10s\n", "size (records)",
                  "measured (s)", "fitted (s)", "error");
      for (const auto& [size, mean_ms] : measured.points) {
        const double fitted_ms =
            static_cast<double>(size) / 1000.0 *
                measured.params.scan_ms_per_krecord +
            measured.params.extra_ms;
        const double err = std::abs(fitted_ms - mean_ms) / mean_ms;
        std::printf("  %14llu %16.2f %16.2f %9.2f%%\n",
                    static_cast<unsigned long long>(size), mean_ms / 1000.0,
                    fitted_ms / 1000.0, err * 100);
        if (err > 0.10) well_fitted = false;
      }
      if (measured.r_squared < 0.97) well_fitted = false;
    }
    bench::PrintRule('=', 64);
  }
  std::printf("Cost(q,p) is well fitted by Eq. 6 (paper: \"especially when "
              "the size of\npartition is relatively large\"): %s\n",
              well_fitted ? "YES" : "NO");
  return well_fitted ? 0 : 1;
}
