// Microbenchmarks for the storage layer: k-d partitioning, replica
// builds, involved-partition lookup, query execution, and analytic
// cost-model evaluation — the per-query hot paths of a BLOT system.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gbench_capture.h"
#include "core/cost_model.h"
#include "core/workload.h"

namespace blot {
namespace {

const Dataset& Fleet() {
  static const Dataset dataset = bench::MakeSample(100000);
  return dataset;
}

void BM_PartitionDataset(benchmark::State& state) {
  const PartitioningSpec spec{
      .spatial_partitions = static_cast<std::size_t>(state.range(0)),
      .temporal_partitions = 16};
  const STRange universe = bench::PaperUniverse();
  for (auto _ : state) {
    PartitionedData pd = PartitionDataset(Fleet(), spec, universe);
    benchmark::DoNotOptimize(pd);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * Fleet().size()));
}
BENCHMARK(BM_PartitionDataset)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ReplicaBuild(benchmark::State& state, const char* scheme_name) {
  const ReplicaConfig config{
      {.spatial_partitions = 64, .temporal_partitions = 16},
      EncodingScheme::FromName(scheme_name)};
  const STRange universe = bench::PaperUniverse();
  ThreadPool pool(4);
  for (auto _ : state) {
    Replica replica = Replica::Build(Fleet(), config, universe, &pool);
    benchmark::DoNotOptimize(replica);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * Fleet().size()));
}
BENCHMARK_CAPTURE(BM_ReplicaBuild, row_snappy, "ROW-SNAPPY");
BENCHMARK_CAPTURE(BM_ReplicaBuild, col_lzma, "COL-LZMA");

const Replica& SharedReplica() {
  static const Replica replica = Replica::Build(
      Fleet(),
      {{.spatial_partitions = 64, .temporal_partitions = 16},
       EncodingScheme::FromName("COL-GZIP")},
      bench::PaperUniverse());
  return replica;
}

void BM_InvolvedPartitions(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  Rng rng(1);
  const double frac = static_cast<double>(state.range(0)) / 100.0;
  const STRange query = SampleQueryInstance(
      {{universe.Width() * frac, universe.Height() * frac,
        universe.Duration() * frac}},
      universe, rng);
  for (auto _ : state) {
    auto involved = SharedReplica().index().InvolvedPartitions(query);
    benchmark::DoNotOptimize(involved);
  }
}
BENCHMARK(BM_InvolvedPartitions)->Arg(5)->Arg(25)->Arg(100);

void BM_QueryExecute(benchmark::State& state) {
  const STRange universe = bench::PaperUniverse();
  Rng rng(2);
  const double frac = static_cast<double>(state.range(0)) / 100.0;
  const STRange query = SampleQueryInstance(
      {{universe.Width() * frac, universe.Height() * frac,
        universe.Duration() * frac}},
      universe, rng);
  std::uint64_t records = 0;
  for (auto _ : state) {
    QueryResult result = SharedReplica().Execute(query);
    records += result.stats.records_scanned;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_QueryExecute)->Arg(5)->Arg(25);

void BM_CostModelGroupedQuery(benchmark::State& state) {
  const ReplicaSketch sketch = ReplicaSketch::FromReplica(SharedReplica());
  const CostModel model{EnvironmentModel::AmazonS3Emr()};
  const STRange universe = bench::PaperUniverse();
  const GroupedQuery query{
      {universe.Width() * 0.1, universe.Height() * 0.1,
       universe.Duration() * 0.1}};
  for (auto _ : state) {
    const double cost = model.QueryCostMs(sketch, query);
    benchmark::DoNotOptimize(cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * sketch.index.NumPartitions()));
}
BENCHMARK(BM_CostModelGroupedQuery);

}  // namespace
}  // namespace blot

int main(int argc, char** argv) {
  return blot::bench::RunAndReport(argc, argv, "micro_storage",
                                   "BENCH_storage.json");
}
