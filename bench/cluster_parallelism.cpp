// Cluster-level behavior of BLOT query processing (Section II-D's
// parallel scanning and Section V-A's map-per-partition jobs), measured
// on the discrete-event cluster simulator:
//
//   1. makespan scaling with cluster size (strong scaling of one query);
//   2. data locality vs the HDFS replication factor (delay scheduling);
//   3. the cost of a mid-query node failure (re-executed tasks);
//   4. diverse replicas also cut *parallel* latency, not just Eq. 7's
//      total work: per-query best-replica makespan vs a single replica.
#include <cstdio>

#include "bench_common.h"
#include "simenv/cluster.h"

using namespace blot;

int main() {
  const Dataset sample = bench::MakeSample(60000);
  const STRange universe = bench::PaperUniverse();
  const EnvironmentModel env = EnvironmentModel::LocalHadoop();

  // Two diverse replicas scaled to 650M records.
  const auto ratios =
      MeasureCompressionRatios(sample, AllEncodingSchemes(), 20000);
  const ReplicaConfig coarse_config{
      {.spatial_partitions = 16, .temporal_partitions = 16},
      EncodingScheme::FromName("COL-LZMA")};
  const ReplicaConfig fine_config{
      {.spatial_partitions = 256, .temporal_partitions = 64},
      EncodingScheme::FromName("COL-LZMA")};
  const std::uint64_t total_records = 650'000'000;
  const ReplicaSketch coarse = ReplicaSketch::FromSample(
      sample, coarse_config, universe, total_records, ratios.at("COL-LZMA"));
  const ReplicaSketch fine = ReplicaSketch::FromSample(
      sample, fine_config, universe, total_records, ratios.at("COL-LZMA"));

  Rng rng(77);
  const STRange mid_query = SampleQueryInstance(
      {{universe.Width() * 0.3, universe.Height() * 0.3,
        universe.Duration() * 0.2}},
      universe, rng);

  // --- 1. strong scaling ---
  std::printf("1. Makespan vs cluster size (one district-week query, %s)\n",
              fine_config.Name().c_str());
  std::printf("   %6s %14s %14s %10s\n", "nodes", "makespan(s)",
              "total work(s)", "efficiency");
  double single_node_makespan = 0;
  for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    ClusterConfig config;
    config.num_nodes = nodes;
    config.noise_fraction = 0.0;
    SimCluster cluster(env, config);
    const auto placement = cluster.PlaceReplica(fine);
    const auto job = cluster.RunQuery(fine, placement, mid_query);
    if (nodes == 1) single_node_makespan = job.makespan_ms;
    std::printf("   %6zu %14.1f %14.1f %9.0f%%\n", nodes,
                job.makespan_ms / 1000.0, job.total_task_ms / 1000.0,
                100.0 * single_node_makespan /
                    (job.makespan_ms * static_cast<double>(nodes)));
  }

  // --- 2. locality vs replication ---
  std::printf("\n2. Data locality vs replication factor (8 nodes)\n");
  std::printf("   %12s %12s %14s\n", "replication", "locality",
              "makespan(s)");
  for (const std::size_t replication : {1u, 2u, 3u, 5u}) {
    ClusterConfig config;
    config.num_nodes = 8;
    config.replication = replication;
    config.noise_fraction = 0.0;
    SimCluster cluster(env, config);
    const auto placement = cluster.PlaceReplica(fine);
    const auto job = cluster.RunQuery(fine, placement, mid_query);
    std::printf("   %12zu %11.0f%% %14.1f\n", replication,
                100.0 * static_cast<double>(job.local_tasks) /
                    static_cast<double>(job.tasks),
                job.makespan_ms / 1000.0);
  }

  // --- 3. node failure overhead ---
  std::printf("\n3. Mid-query node failure (8 nodes, replication 3)\n");
  {
    ClusterConfig config;
    config.num_nodes = 8;
    config.replication = 3;
    config.noise_fraction = 0.0;
    SimCluster cluster(env, config);
    const auto placement = cluster.PlaceReplica(fine);
    const auto healthy = cluster.RunQuery(fine, placement, mid_query);
    const auto degraded = cluster.RunQuery(
        fine, placement, mid_query,
        FailureInjection{0, healthy.makespan_ms * 0.3});
    std::printf("   healthy: %.1f s;  with failure: %.1f s (+%.0f%%), "
                "%zu tasks re-executed, job %s\n",
                healthy.makespan_ms / 1000.0, degraded.makespan_ms / 1000.0,
                100.0 * (degraded.makespan_ms / healthy.makespan_ms - 1.0),
                degraded.reexecuted_tasks,
                degraded.completed ? "completed" : "FAILED");
  }

  // --- 3b. speculative execution under node heterogeneity ---
  std::printf("\n3b. Speculative execution vs a 4x-degraded node "
              "(8 nodes)\n");
  {
    // Stragglers come from a degraded machine (the classic MapReduce
    // case); the coarse replica's large tasks make the final wave matter.
    double plain_total = 0, spec_total = 0;
    std::size_t backups = 0, wins = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      ClusterConfig config;
      config.num_nodes = 8;
      config.noise_fraction = 0.1;
      config.slow_node = 3;
      config.slow_factor = 4.0;
      config.seed = seed;
      SimCluster plain(env, config);
      const auto p1 = plain.PlaceReplica(coarse);
      plain_total += plain.RunQuery(coarse, p1, mid_query).makespan_ms;
      config.speculative_execution = true;
      SimCluster spec(env, config);
      const auto p2 = spec.PlaceReplica(coarse);
      const auto job = spec.RunQuery(coarse, p2, mid_query);
      spec_total += job.makespan_ms;
      backups += job.speculative_backups;
      wins += job.speculative_wins;
    }
    std::printf("   mean makespan: %.1f s -> %.1f s (%.1f%% better); "
                "%zu backups launched, %zu won\n",
                plain_total / 8000.0, spec_total / 8000.0,
                100.0 * (1.0 - spec_total / plain_total), backups, wins);
  }

  // --- 4. diverse replicas improve parallel latency too ---
  std::printf("\n4. Per-query makespan: coarse vs fine vs routed-best "
              "(8 nodes)\n");
  std::printf("   %-22s %12s %12s %12s\n", "query", "coarse(s)", "fine(s)",
              "best(s)");
  ClusterConfig config;
  config.num_nodes = 8;
  config.noise_fraction = 0.0;
  SimCluster cluster(env, config);
  const auto coarse_placement = cluster.PlaceReplica(coarse);
  const auto fine_placement = cluster.PlaceReplica(fine);
  double sum_coarse = 0, sum_fine = 0, sum_best = 0;
  const struct {
    const char* label;
    double fx, fy, ft;
  } queries[] = {{"block x hour", 0.01, 0.01, 0.005},
                 {"district x day", 0.1, 0.1, 0.04},
                 {"half city x week", 0.5, 0.5, 0.25},
                 {"full scan", 1.0, 1.0, 1.0}};
  for (const auto& q : queries) {
    const STRange instance = SampleQueryInstance(
        {{universe.Width() * q.fx, universe.Height() * q.fy,
          universe.Duration() * q.ft}},
        universe, rng);
    const double c =
        cluster.RunQuery(coarse, coarse_placement, instance).makespan_ms;
    const double f =
        cluster.RunQuery(fine, fine_placement, instance).makespan_ms;
    sum_coarse += c;
    sum_fine += f;
    sum_best += std::min(c, f);
    std::printf("   %-22s %12.1f %12.1f %12.1f\n", q.label, c / 1000.0,
                f / 1000.0, std::min(c, f) / 1000.0);
  }
  std::printf("   %-22s %12.1f %12.1f %12.1f\n", "TOTAL",
              sum_coarse / 1000.0, sum_fine / 1000.0, sum_best / 1000.0);
  std::printf("\nRouting across diverse replicas beats pinning to either "
              "single replica:\n  %.1fx vs coarse, %.1fx vs fine.\n",
              sum_coarse / sum_best, sum_fine / sum_best);
  return 0;
}
