// Table II reproduction: measuring 1/ScanRate and ExtraCost for every
// encoding scheme in both execution environments using the procedure of
// Section V-B (5 partition sets x 20 partitions, average, then linear
// regression), against the environments' ground-truth constants.
//
// The check is methodological: the fitted parameters must recover the
// environment's true constants through realistic measurement noise.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "simenv/measurement.h"

using namespace blot;

int main() {
  bool all_accurate = true;
  for (const EnvironmentModel& env :
       {EnvironmentModel::AmazonS3Emr(), EnvironmentModel::LocalHadoop()}) {
    std::printf("Table II: %s\n", env.name().c_str());
    std::printf("%-12s | %14s %14s | %14s %14s | %6s\n", "encoding",
                "1/ScanRate(ms)", "fitted", "ExtraCost(ms)", "fitted",
                "R^2");
    bench::PrintRule('-', 88);
    Simulator sim(env, {.noise_fraction = 0.04, .seed = 1113});
    for (const EncodingScheme& scheme : AllEncodingSchemes()) {
      const ScanCostParams& truth = env.Params(scheme);
      const MeasuredScanParams measured = MeasureScanParams(sim, scheme);
      const double scan_err =
          std::abs(measured.params.scan_ms_per_krecord -
                   truth.scan_ms_per_krecord) /
          truth.scan_ms_per_krecord;
      const double extra_err =
          std::abs(measured.params.extra_ms - truth.extra_ms) /
          truth.extra_ms;
      std::printf("%-12s | %14.2f %14.2f | %14.0f %14.0f | %6.4f\n",
                  scheme.Name().c_str(), truth.scan_ms_per_krecord,
                  measured.params.scan_ms_per_krecord, truth.extra_ms,
                  measured.params.extra_ms, measured.r_squared);
      if (scan_err > 0.15 || extra_err > 0.25 || measured.r_squared < 0.97)
        all_accurate = false;
    }
    bench::PrintRule('-', 88);
    std::printf("\n");
  }
  std::printf("Fitted parameters recover ground truth within tolerance: "
              "%s\n",
              all_accurate ? "YES" : "NO");
  return all_accurate ? 0 : 1;
}
