// Fault-tolerant execution latency: what failover and repair cost.
//
// Four measured paths over the same query stream on a two-replica store:
//   healthy   — no faults, injector disarmed; the routing baseline.
//   armed-p0  — injector armed with probability 0: the per-read cost of
//               the injection hook itself (the disarmed hook is a single
//               relaxed atomic load and is part of `healthy`).
//   failover  — the routed replica's copies of the query's partitions are
//               corrupted first; Execute pays the failed attempt, the
//               quarantine bookkeeping, and the retry on the survivor
//               (RepairMode::kNone, repair excluded from the timing).
//   sync-heal — same corruption, RepairMode::kSync: Execute additionally
//               re-encodes the quarantined partitions inline before
//               returning (the self-healing worst case).
// Plus a repair-throughput measurement: partitions/s and records/s for
// partition-granular RecoverPartition over a fully corrupted replica.
//
// Writes machine-readable results to BENCH_failover.json (or argv[1],
// schema blot.bench.v1). The overhead ratios (failover_overhead_x,
// sync_heal_overhead_x) are machine-independent and tracked; raw
// per-query timings are untracked metrics. Consistency bar: every path
// must match the healthy record counts.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/fault_injection.h"
#include "core/store.h"

using namespace blot;

namespace {

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Flips a byte in the middle of each non-empty involved unit; returns how
// many units were corrupted.
std::size_t CorruptInvolved(BlotStore& store, std::size_t replica,
                            const STRange& query) {
  std::size_t corrupted = 0;
  for (const std::size_t p :
       store.replica(replica).index().InvolvedPartitions(query)) {
    StoredPartition& unit = store.mutable_replica(replica).MutablePartition(p);
    if (unit.data.empty()) continue;
    unit.data[unit.data.size() / 2] ^= 0x5A;
    ++corrupted;
  }
  return corrupted;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      bench::OutputPath(argc, argv, "BENCH_failover.json");

  constexpr std::size_t kRecords = 60000;
  constexpr std::size_t kQueries = 48;

  Dataset dataset = bench::MakeSample(kRecords);
  const std::size_t num_records = dataset.size();
  const STRange universe = bench::PaperUniverse();
  ThreadPool pool(4);
  BlotStore store(std::move(dataset), universe);
  const std::size_t rep_row = store.AddReplica(
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("ROW-SNAPPY")},
      &pool);
  const std::size_t rep_col = store.AddReplica(
      {{.spatial_partitions = 64, .temporal_partitions = 16},
       EncodingScheme::FromName("COL-GZIP")},
      &pool);
  std::printf("store: %s + %s over %zu records\n",
              store.replica(rep_row).config().Name().c_str(),
              store.replica(rep_col).config().Name().c_str(), num_records);

  const CostModel model{EnvironmentModel::LocalHadoop()};
  Rng rng(20140623);
  std::vector<STRange> queries;
  for (std::size_t i = 0; i < kQueries; ++i)
    queries.push_back(SampleQueryInstance(
        {{universe.Width() * 0.15, universe.Height() * 0.15,
          universe.Duration() * 0.25}},
        universe, rng));

  FailoverPolicy no_repair;
  no_repair.repair = RepairMode::kNone;
  store.SetFailoverPolicy(no_repair);

  // --- healthy baseline (also learns each query's preferred replica) ---
  std::vector<std::size_t> preferred(queries.size(), 0);
  std::vector<std::size_t> healthy_counts(queries.size(), 0);
  double healthy_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto routed = store.Execute(queries[i], model, &pool);
      healthy_counts[i] = routed.result.records.size();
      for (std::size_t r = 0; r < store.NumReplicas(); ++r)
        if (store.replica(r).config().Name() == routed.served_by)
          preferred[i] = r;
    }
    const double ms = MsSince(start);
    healthy_ms = rep == 0 ? ms : std::min(healthy_ms, ms);
  }

  // --- armed injector that never fires: the hook's own overhead --------
  FaultPlan noop_plan;
  noop_plan.probability = 0.0;
  noop_plan.max_fires_per_target = 0;
  FaultInjector::Global().Arm(noop_plan);
  double armed_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (const STRange& q : queries) store.Execute(q, model, &pool);
    const double ms = MsSince(start);
    armed_ms = rep == 0 ? ms : std::min(armed_ms, ms);
  }
  FaultInjector::Global().Disarm();

  // --- failover: corrupt the routed replica, time only Execute ---------
  // Repair between queries (untimed) resets the data and the health map
  // so every query pays the full first-attempt-fails path.
  double failover_ms = 0.0;
  std::size_t failover_mismatches = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (CorruptInvolved(store, preferred[i], queries[i]) == 0) continue;
    const auto start = std::chrono::steady_clock::now();
    const auto routed = store.Execute(queries[i], model, &pool);
    failover_ms += MsSince(start);
    if (routed.result.records.size() != healthy_counts[i])
      ++failover_mismatches;
    store.RepairQuarantined(&pool);
  }

  // --- sync self-healing: Execute repairs inline ------------------------
  FailoverPolicy sync_policy;
  sync_policy.repair = RepairMode::kSync;
  store.SetFailoverPolicy(sync_policy);
  double heal_ms = 0.0;
  std::size_t heal_mismatches = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (CorruptInvolved(store, preferred[i], queries[i]) == 0) continue;
    const auto start = std::chrono::steady_clock::now();
    const auto routed = store.Execute(queries[i], model, &pool);
    heal_ms += MsSince(start);
    if (routed.result.records.size() != healthy_counts[i]) ++heal_mismatches;
  }
  store.SetFailoverPolicy(no_repair);

  // --- repair throughput: partition-granular recovery of every unit -----
  std::vector<std::size_t> broken;
  for (std::size_t p = 0; p < store.replica(rep_col).NumPartitions(); ++p) {
    StoredPartition& unit = store.mutable_replica(rep_col).MutablePartition(p);
    if (unit.data.empty()) continue;
    unit.data[unit.data.size() / 3] ^= 0xFF;
    broken.push_back(p);
  }
  std::uint64_t records_restored = 0;
  const auto repair_start = std::chrono::steady_clock::now();
  for (const std::size_t p : broken)
    records_restored += store.RecoverPartition(rep_col, p, rep_row, &pool);
  const double repair_ms = MsSince(repair_start);
  const std::size_t repaired = broken.size();

  const double per_query_healthy = healthy_ms / queries.size();
  const double per_query_armed = armed_ms / queries.size();
  const double per_query_failover = failover_ms / queries.size();
  const double per_query_heal = heal_ms / queries.size();
  bench::PrintRule('-', 64);
  std::printf("%-26s %12s %14s\n", "path", "ms/query", "vs healthy");
  bench::PrintRule('-', 64);
  std::printf("%-26s %12.3f %13.2fx\n", "healthy", per_query_healthy, 1.0);
  std::printf("%-26s %12.3f %13.2fx\n", "armed injector (p=0)",
              per_query_armed, per_query_armed / per_query_healthy);
  std::printf("%-26s %12.3f %13.2fx\n", "failover (no repair)",
              per_query_failover, per_query_failover / per_query_healthy);
  std::printf("%-26s %12.3f %13.2fx\n", "failover + sync heal",
              per_query_heal, per_query_heal / per_query_healthy);
  bench::PrintRule('-', 64);
  std::printf(
      "repair: %zu partitions (%llu records) in %.1f ms "
      "(%.0f partitions/s, %.0f records/s)\n",
      repaired, static_cast<unsigned long long>(records_restored), repair_ms,
      repair_ms > 0 ? 1000.0 * repaired / repair_ms : 0.0,
      repair_ms > 0 ? 1000.0 * records_restored / repair_ms : 0.0);

  bench::BenchReport report("micro_failover");
  report.Metric("healthy_ms_per_query", per_query_healthy);
  report.Metric("armed_noop_ms_per_query", per_query_armed);
  report.Metric("failover_ms_per_query", per_query_failover);
  report.Metric("sync_heal_ms_per_query", per_query_heal);
  report.Metric("failover_overhead_x", per_query_failover / per_query_healthy,
                /*tracked=*/true);
  report.Metric("sync_heal_overhead_x", per_query_heal / per_query_healthy,
                /*tracked=*/true);
  report.Metric("repair_ms", repair_ms);
  report.Metric("repair_partitions_per_s",
                repair_ms > 0 ? 1000.0 * repaired / repair_ms : 0.0);
  report.Info("dataset_records", static_cast<std::uint64_t>(num_records));
  report.Info("queries", static_cast<std::uint64_t>(queries.size()));
  report.Info("repair_partitions", static_cast<std::uint64_t>(repaired));
  report.Info("repair_records", records_restored);
  if (!report.Write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());

  const bool consistent = failover_mismatches == 0 && heal_mismatches == 0 &&
                          store.health().QuarantinedCount() == 0;
  std::printf("result consistency across paths: %s\n",
              consistent ? "YES" : "NO");
  return consistent ? 0 : 1;
}
