// Figure 6 reproduction: per-query weighted cost of Single / Greedy / MIP
// / Ideal on the 8-query synthetic workload, at four dataset scales
// (3.7 GB, 37 GB, 370 GB, 3,700 GB), in the Amazon S3 + EMR environment.
//
// Shapes to reproduce: at 3.7 GB all approaches are close (S3's ~30 s
// task startup dominates); as the data grows the single replica falls
// behind on more and more queries while greedy and MIP track the ideal —
// "when the size of data grows ... the advantages of using diverse
// replicas become more and more prominent." Approximation ratios (vs
// ideal) are printed per approach, as in the paper's legends.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "core/mip_selection.h"

using namespace blot;

int main() {
  // BLOT_TRIMMED=1 uses the smaller candidate space (for quick runs);
  // the default is the paper's full 25-partitioning space.
  const bool trimmed = std::getenv("BLOT_TRIMMED") != nullptr;
  const Dataset sample = bench::MakeSample(15000);
  const STRange universe = bench::PaperUniverse();
  const Workload workload = bench::WildlyVariedWorkload(universe);
  const CostModel model{EnvironmentModel::AmazonS3Emr()};
  const auto ratios =
      MeasureCompressionRatios(sample, AllEncodingSchemes(), 15000);
  const std::vector<PartitioningSpec> partitionings =
      trimmed ? bench::TrimmedPartitionings() : bench::PaperPartitionings();

  struct Scale {
    const char* label;
    std::uint64_t multiplier;
  };
  const Scale scales[] = {
      {"3.7 GB", 1}, {"37 GB", 10}, {"370 GB", 100}, {"3,700 GB", 1000}};

  std::vector<double> single_ratio_by_scale;
  for (const Scale& scale : scales) {
    const std::uint64_t total_records =
        bench::kPaperRecords * scale.multiplier;
    CandidateMatrixResult matrix = BuildSelectionInputGrouped(
        sample, universe, partitionings, AllEncodingSchemes(), ratios,
        total_records, workload, model, /*budget*/ 1.0);
    // Equal per-query contributions (see EqualizeQueryContributions).
    bench::EqualizeQueryContributions(matrix.input);

    // Budget = storage of 3 exact copies of the optimal single replica.
    SelectionInput unconstrained = matrix.input;
    unconstrained.budget_bytes = 1e18;
    const SelectionResult best_any = SelectBestSingle(unconstrained);
    SelectionInput instance = matrix.input;
    instance.budget_bytes = 3.0 * best_any.storage_used;

    const SelectionResult single = SelectBestSingle(instance);
    const SelectionResult greedy = SelectGreedy(instance);
    const SelectionResult mip = SelectMip(instance);
    const SelectionResult ideal = SelectIdeal(instance);

    const auto ratio = [&](const SelectionResult& r) {
      return r.workload_cost / ideal.workload_cost;
    };
    std::printf("Figure 6, data size %s (%llu M records, budget %.0f GB)\n",
                scale.label,
                static_cast<unsigned long long>(total_records / 1000000),
                instance.budget_bytes / 1e9);
    std::printf("  Single(%.2f)  Greedy(%.2f)  MIP(%.2f)  Ideal(1.00)"
                "   [approximation ratios]\n",
                ratio(single), ratio(greedy), ratio(mip));
    std::printf("  %-5s | %12s %12s %12s %12s   (per-query cost, s)\n",
                "query", "Single", "Greedy", "MIP", "Ideal");
    bench::PrintRule('-', 70);
    for (std::size_t i = 0; i < workload.size(); ++i) {
      const auto per_query = [&](const SelectionResult& r) {
        double best = 1e300;
        for (std::size_t j : r.chosen)
          best = std::min(best, instance.cost[i][j]);
        return best / 1000.0;
      };
      std::printf("  q%-4zu | %12.0f %12.0f %12.0f %12.0f\n", i + 1,
                  per_query(single), per_query(greedy), per_query(mip),
                  per_query(ideal));
    }
    std::printf("\n");
    single_ratio_by_scale.push_back(ratio(single));
  }

  // The gap widens with scale until the candidate space's finest
  // granularity saturates (bounded at 4096 x 256 partitions), so a small
  // dip at the extreme scale is tolerated.
  bool widens = true;
  for (std::size_t i = 1; i < single_ratio_by_scale.size(); ++i)
    if (single_ratio_by_scale[i] < single_ratio_by_scale[i - 1] - 0.15)
      widens = false;
  if (single_ratio_by_scale.back() < 1.5) widens = false;
  std::printf("Single-replica penalty grows with data size (the paper's "
              "headline trend): %s\n  ratios: ",
              widens ? "YES" : "NO");
  for (double r : single_ratio_by_scale) std::printf("%.2f  ", r);
  std::printf("\n");
  return 0;
}
