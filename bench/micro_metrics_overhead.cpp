// Overhead of the observability layer on the query hot path: the same
// routed execution with the global metrics registry disabled (the
// default — instrumentation reduces to one relaxed atomic load per
// site) and enabled (clock reads + atomic bumps). The enabled/disabled
// ratio is the number docs/observability.md budgets at <5%.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/store.h"
#include "obs/metrics.h"

namespace blot {
namespace {

BlotStore& SharedStore() {
  static BlotStore store = [] {
    BlotStore s(bench::MakeSample(40000), bench::PaperUniverse());
    s.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                  EncodingScheme::FromName("ROW-SNAPPY")});
    s.AddReplica({{.spatial_partitions = 64, .temporal_partitions = 16},
                  EncodingScheme::FromName("COL-GZIP")});
    return s;
  }();
  return store;
}

STRange MidSizeQuery() {
  const STRange u = bench::PaperUniverse();
  return STRange::FromBounds(
      u.x_min(), u.x_min() + u.Width() * 0.2, u.y_min(),
      u.y_min() + u.Height() * 0.2, u.t_min(),
      u.t_min() + u.Duration() * 0.2);
}

void RunRoutedQueries(benchmark::State& state, bool metrics_on) {
  BlotStore& store = SharedStore();
  const CostModel model{EnvironmentModel::LocalHadoop()};
  const STRange query = MidSizeQuery();
  auto& registry = obs::MetricsRegistry::global();
  registry.set_enabled(metrics_on);
  for (auto _ : state) {
    auto routed = store.Execute(query, model);
    benchmark::DoNotOptimize(routed);
  }
  registry.set_enabled(false);
  state.SetItemsProcessed(state.iterations());
}

void BM_RoutedQuery_MetricsDisabled(benchmark::State& state) {
  RunRoutedQueries(state, false);
}
BENCHMARK(BM_RoutedQuery_MetricsDisabled);

void BM_RoutedQuery_MetricsEnabled(benchmark::State& state) {
  RunRoutedQueries(state, true);
}
BENCHMARK(BM_RoutedQuery_MetricsEnabled);

void BM_CodecDecode_MetricsDisabled(benchmark::State& state) {
  // Decode path in isolation: the per-partition codec timer is the
  // highest-frequency instrumentation point.
  BlotStore& store = SharedStore();
  const CostModel model{EnvironmentModel::LocalHadoop()};
  const STRange u = bench::PaperUniverse();
  obs::MetricsRegistry::global().set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    auto routed = store.Execute(u, model);  // full scan: decode-bound
    benchmark::DoNotOptimize(routed);
  }
  obs::MetricsRegistry::global().set_enabled(false);
}
BENCHMARK(BM_CodecDecode_MetricsDisabled)->Arg(0)->Arg(1)
    ->Name("BM_FullScan_Metrics");

}  // namespace
}  // namespace blot

BENCHMARK_MAIN();
