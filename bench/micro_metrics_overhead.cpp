// Overhead of the observability layer on the query hot path, with the
// full telemetry stack compiled in: metrics registry, per-query stage
// profiles, structured event log, and the background snapshotter.
//
// Variants of the same routed execution:
//   MetricsDisabled   — everything off (the default): instrumentation
//                       reduces to relaxed atomic guard loads.
//   MetricsEnabled    — registry on: clock reads + atomic bumps + the
//                       per-query stage profile.
//   FullTelemetry     — registry + event log enabled and the snapshotter
//                       sampling on its background thread while queries
//                       run: the everything-on worst case.
//   TelemetryGuards   — just the guard loads, isolated: the only cost an
//                       instrumented site pays when telemetry is off.
//
// Results land in BENCH_obs_overhead.json. The tracked metrics are the
// enabled/disabled and full/disabled overhead percentages, plus
// disabled_overhead_pct — the guard cost modeled per query (guard time x
// a generous per-query guard-site count over the disabled query time),
// which docs/observability.md budgets at < 1%.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"
#include "core/partition_cache.h"
#include "core/store.h"
#include "gbench_capture.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace blot {
namespace {

BlotStore& SharedStore() {
  static BlotStore store = [] {
    BlotStore s(bench::MakeSample(40000), bench::PaperUniverse());
    s.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                  EncodingScheme::FromName("ROW-SNAPPY")});
    s.AddReplica({{.spatial_partitions = 64, .temporal_partitions = 16},
                  EncodingScheme::FromName("COL-GZIP")});
    return s;
  }();
  return store;
}

STRange MidSizeQuery() {
  const STRange u = bench::PaperUniverse();
  return STRange::FromBounds(
      u.x_min(), u.x_min() + u.Width() * 0.2, u.y_min(),
      u.y_min() + u.Height() * 0.2, u.t_min(),
      u.t_min() + u.Duration() * 0.2);
}

void RunRoutedQueries(benchmark::State& state, bool metrics_on) {
  BlotStore& store = SharedStore();
  const CostModel model{EnvironmentModel::LocalHadoop()};
  const STRange query = MidSizeQuery();
  auto& registry = obs::MetricsRegistry::global();
  registry.set_enabled(metrics_on);
  for (auto _ : state) {
    auto routed = store.Execute(query, model);
    benchmark::DoNotOptimize(routed);
  }
  registry.set_enabled(false);
  state.SetItemsProcessed(state.iterations());
}

void BM_RoutedQuery_MetricsDisabled(benchmark::State& state) {
  RunRoutedQueries(state, false);
}
BENCHMARK(BM_RoutedQuery_MetricsDisabled);

void BM_RoutedQuery_MetricsEnabled(benchmark::State& state) {
  RunRoutedQueries(state, true);
}
BENCHMARK(BM_RoutedQuery_MetricsEnabled);

void BM_RoutedQuery_FullTelemetry(benchmark::State& state) {
  // Everything on at once: registry (so stage profiles populate), event
  // log (in-memory ring; the healthy path emits no events, so this
  // prices the armed guards), and the snapshotter sampling the registry
  // every 5 ms on its own thread while queries run.
  BlotStore& store = SharedStore();
  const CostModel model{EnvironmentModel::LocalHadoop()};
  const STRange query = MidSizeQuery();
  auto& registry = obs::MetricsRegistry::global();
  auto& log = obs::EventLog::Global();
  registry.set_enabled(true);
  log.set_enabled(true);
  obs::SnapshotterOptions options;
  options.interval = std::chrono::milliseconds(5);
  obs::MetricsSnapshotter snapshotter(options);
  snapshotter.Start();
  for (auto _ : state) {
    auto routed = store.Execute(query, model);
    benchmark::DoNotOptimize(routed);
  }
  snapshotter.Stop();
  log.set_enabled(false);
  registry.set_enabled(false);
  state.SetItemsProcessed(state.iterations());
  state.counters["snapshots"] =
      static_cast<double>(snapshotter.samples_taken());
}
BENCHMARK(BM_RoutedQuery_FullTelemetry);

void BM_CodecDecode_MetricsDisabled(benchmark::State& state) {
  // Decode path in isolation: the per-partition codec timer is the
  // highest-frequency instrumentation point.
  BlotStore& store = SharedStore();
  const CostModel model{EnvironmentModel::LocalHadoop()};
  const STRange u = bench::PaperUniverse();
  obs::MetricsRegistry::global().set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    auto routed = store.Execute(u, model);  // full scan: decode-bound
    benchmark::DoNotOptimize(routed);
  }
  obs::MetricsRegistry::global().set_enabled(false);
}
BENCHMARK(BM_CodecDecode_MetricsDisabled)->Arg(0)->Arg(1)
    ->Name("BM_FullScan_Metrics");

void BM_TelemetryGuards(benchmark::State& state) {
  // One iteration = the three guard loads an instrumented site performs
  // when all telemetry is off (registry, event log, partition cache).
  auto& registry = obs::MetricsRegistry::global();
  auto& log = obs::EventLog::Global();
  auto& cache = PartitionCache::Global();
  for (auto _ : state) {
    bool any = registry.enabled() || log.enabled() || cache.enabled();
    benchmark::DoNotOptimize(any);
  }
}
BENCHMARK(BM_TelemetryGuards);

}  // namespace

namespace bench {
namespace {

// A routed query passes a bounded number of guarded sites on the
// disabled path: routing, per-stage profile gates, the per-partition
// cache/codec gates. 64 is a deliberate overestimate (a mid-size query
// touches ~10 partitions with a handful of gates each), so the modeled
// disabled overhead is an upper bound.
constexpr double kGuardSitesPerQuery = 64.0;

void DeriveTracked(const CaptureReporter& reporter, BenchReport& report) {
  const double disabled = reporter.RealNs("BM_RoutedQuery_MetricsDisabled");
  const double enabled = reporter.RealNs("BM_RoutedQuery_MetricsEnabled");
  const double full = reporter.RealNs("BM_RoutedQuery_FullTelemetry");
  const double guards = reporter.RealNs("BM_TelemetryGuards");
  const double scan_off = reporter.RealNs("BM_FullScan_Metrics/0");
  const double scan_on = reporter.RealNs("BM_FullScan_Metrics/1");
  if (disabled > 0 && enabled > 0)
    report.Metric("metrics_enabled_overhead_pct",
                  (enabled / disabled - 1.0) * 100.0, /*tracked=*/true);
  if (disabled > 0 && full > 0)
    report.Metric("full_telemetry_overhead_pct",
                  (full / disabled - 1.0) * 100.0, /*tracked=*/true);
  if (scan_off > 0 && scan_on > 0)
    report.Metric("full_scan_enabled_overhead_pct",
                  (scan_on / scan_off - 1.0) * 100.0);
  if (disabled > 0 && guards >= 0)
    report.Metric("disabled_overhead_pct",
                  guards * kGuardSitesPerQuery / disabled * 100.0,
                  /*tracked=*/true);
  report.Info("guard_sites_per_query_model",
              static_cast<std::uint64_t>(kGuardSitesPerQuery));
}

}  // namespace
}  // namespace bench
}  // namespace blot

int main(int argc, char** argv) {
  return blot::bench::RunAndReport(argc, argv, "micro_metrics_overhead",
                                   "BENCH_obs_overhead.json",
                                   blot::bench::DeriveTracked);
}
