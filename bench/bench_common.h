// Shared fixtures for the paper-reproduction benches: the sampled taxi
// dataset, the paper's candidate space (Section V-A), the synthetic
// evaluation workload of Section V-C ("8 grouped queries with wildly
// varied range size") — and the BENCH_<name>.json result writer every
// micro bench emits for the CI perf tripwire.
#ifndef BLOT_BENCH_BENCH_COMMON_H_
#define BLOT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "core/workload.h"
#include "gen/taxi_generator.h"

namespace blot::bench {

// ---------------------------------------------------------------------
// BENCH_<name>.json writer (schema blot.bench.v1)
//
// Every micro bench reports through this so results share one shape the
// tripwire (scripts/bench_tripwire.py) can diff against committed
// baselines:
//
//   {"schema": "blot.bench.v1", "bench": "micro_x",
//    "metrics": [{"name": "...", "value": 1.23, "tracked": true}, ...],
//    "info": {"replica": "KD64xT32/COL-GZIP"},
//    "extra": {"sweep": [...]}}
//
// `tracked: true` marks the metrics the tripwire enforces; keep those
// machine-independent (ratios, percentages, speedups) so a faster or
// slower CI runner doesn't move them. Raw timings go in untracked
// metrics, free-form detail in `extra` (pre-rendered JSON).
class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  void Metric(const std::string& name, double value, bool tracked = false) {
    metrics_.push_back({name, value, tracked});
  }
  void Info(const std::string& key, const std::string& value) {
    info_.emplace_back(key, value);
  }
  void Info(const std::string& key, std::uint64_t value) {
    info_.emplace_back(key, std::to_string(value));
  }
  // `raw_json` must be a complete, pre-rendered JSON value.
  void Extra(const std::string& key, std::string raw_json) {
    extra_.emplace_back(key, std::move(raw_json));
  }

  bool Write(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out,
                 "{\n  \"schema\": \"blot.bench.v1\",\n  \"bench\": \"%s\","
                 "\n  \"metrics\": [\n",
                 Escaped(bench_).c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i)
      std::fprintf(out, "    {\"name\": \"%s\", \"value\": %.17g, "
                        "\"tracked\": %s}%s\n",
                   Escaped(metrics_[i].name).c_str(), metrics_[i].value,
                   metrics_[i].tracked ? "true" : "false",
                   i + 1 < metrics_.size() ? "," : "");
    std::fprintf(out, "  ]");
    if (!info_.empty()) {
      std::fprintf(out, ",\n  \"info\": {\n");
      for (std::size_t i = 0; i < info_.size(); ++i)
        std::fprintf(out, "    \"%s\": \"%s\"%s\n",
                     Escaped(info_[i].first).c_str(),
                     Escaped(info_[i].second).c_str(),
                     i + 1 < info_.size() ? "," : "");
      std::fprintf(out, "  }");
    }
    if (!extra_.empty()) {
      std::fprintf(out, ",\n  \"extra\": {\n");
      for (std::size_t i = 0; i < extra_.size(); ++i)
        std::fprintf(out, "    \"%s\": %s%s\n",
                     Escaped(extra_[i].first).c_str(),
                     extra_[i].second.c_str(),
                     i + 1 < extra_.size() ? "," : "");
      std::fprintf(out, "  }");
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    return true;
  }

 private:
  struct MetricEntry {
    std::string name;
    double value = 0;
    bool tracked = false;
  };

  // Names and labels are bench-controlled; only the JSON specials need
  // escaping.
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string bench_;
  std::vector<MetricEntry> metrics_;
  std::vector<std::pair<std::string, std::string>> info_;
  std::vector<std::pair<std::string, std::string>> extra_;
};

// Output path convention shared by the handwritten benches: a leading
// positional argument overrides the default BENCH_<name>.json.
inline std::string OutputPath(int argc, char** argv, const char* fallback) {
  return argc > 1 && argv[1][0] != '-' ? argv[1] : fallback;
}

// The paper's dataset: ~65M records = 3.7 GB of CSV. We sample it with
// the generator and scale record counts in the sketches.
inline constexpr std::uint64_t kPaperRecords = 65'000'000;

inline Dataset MakeSample(std::size_t records = 20000,
                          std::uint64_t seed = 20071101) {
  TaxiFleetConfig config;
  config.seed = seed;
  config.num_taxis = 50;
  config.samples_per_taxi = (records + config.num_taxis - 1) /
                            config.num_taxis;
  return GenerateTaxiFleet(config);
}

inline STRange PaperUniverse() {
  return TaxiFleetConfig{}.Universe();
}

// Section V-A: spatial counts 4^2..4^6, temporal counts 2^4..2^8 — 25
// k-d-tree partitioning schemes.
inline std::vector<PartitioningSpec> PaperPartitionings() {
  std::vector<PartitioningSpec> specs;
  for (const std::size_t spatial : {16u, 64u, 256u, 1024u, 4096u})
    for (const std::size_t temporal : {16u, 32u, 64u, 128u, 256u})
      specs.push_back({.spatial_partitions = spatial,
                       .temporal_partitions = temporal});
  return specs;
}

// A trimmed sub-space for benches that sweep many configurations.
inline std::vector<PartitioningSpec> TrimmedPartitionings() {
  std::vector<PartitioningSpec> specs;
  for (const std::size_t spatial : {16u, 64u, 256u, 1024u})
    for (const std::size_t temporal : {16u, 64u, 256u})
      specs.push_back({.spatial_partitions = spatial,
                       .temporal_partitions = temporal});
  return specs;
}

// Section V-C: "a synthetic workload containing 8 grouped queries with
// wildly varied range size" — the (W, H, T) sizes vary independently
// across 2.5 orders of magnitude, so different queries genuinely prefer
// different spatial/temporal partition granularities (a block's
// month-long history wants fine space + coarse time; a city-wide
// snapshot wants the reverse; the full scan wants both coarse).
inline Workload WildlyVariedWorkload(const STRange& universe) {
  Workload workload;
  const double fractions[8][3] = {
      {0.005, 0.005, 0.8},   // q1: city block, almost the whole month
      {0.9, 0.9, 0.002},     // q2: city-wide snapshot, ~1 hour
      {0.01, 0.01, 0.01},    // q3: tiny in every dimension
      {0.05, 0.05, 0.2},     // q4: neighborhood, ~6 days
      {0.3, 0.3, 0.005},     // q5: district snapshot
      {0.1, 0.1, 0.05},      // q6: mid-size
      {0.5, 0.5, 0.3},       // q7: large
      {1.0, 1.0, 1.0},       // q8: full scan
  };
  for (const auto& f : fractions)
    workload.Add({{universe.Width() * f[0], universe.Height() * f[1],
                   universe.Duration() * f[2]}},
                 1.0);
  return workload;
}

// Reweights queries so each contributes equally to the ideal workload
// cost: w_i = 1 / min_j cost[i][j]. The paper leaves the weights of its
// 8-query workload unspecified ("importance (frequency, priority, etc.)",
// Definition 6); with raw equal weights the largest query dominates the
// sum and configuration diversity cannot show. Equal contribution is the
// neutral choice that exposes the per-query trade-offs of Figure 6.
inline void EqualizeQueryContributions(SelectionInput& input) {
  for (std::size_t i = 0; i < input.NumQueries(); ++i) {
    double ideal = input.cost[i][0];
    for (double c : input.cost[i]) ideal = std::min(ideal, c);
    input.weights[i] = ideal > 0 ? 1.0 / ideal : 1.0;
  }
}

inline void PrintRule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace blot::bench

#endif  // BLOT_BENCH_BENCH_COMMON_H_
