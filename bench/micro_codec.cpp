// Microbenchmarks for the compression substrate: throughput of each codec
// and layout on partition-sized blocks of taxi records. These back the
// ratio/speed frontier the encoding-scheme trade-off relies on: SNAPPY
// fastest, GZIP middle, LZMA slowest per byte in both directions.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gbench_capture.h"
#include "blot/encoding_scheme.h"

namespace blot {
namespace {

const Dataset& PartitionData() {
  static const Dataset dataset = [] {
    Dataset d = bench::MakeSample(50000);
    d.SortByTime();
    return d;
  }();
  return dataset;
}

void BM_Compress(benchmark::State& state, CodecKind kind) {
  const Bytes raw =
      SerializeRecords(PartitionData().records(), Layout::kRow);
  const Codec& codec = GetCodec(kind);
  for (auto _ : state) {
    Bytes compressed = codec.Compress(raw);
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * raw.size()));
}

void BM_Decompress(benchmark::State& state, CodecKind kind) {
  const Bytes raw =
      SerializeRecords(PartitionData().records(), Layout::kRow);
  const Codec& codec = GetCodec(kind);
  const Bytes compressed = codec.Compress(raw);
  for (auto _ : state) {
    Bytes output = codec.Decompress(compressed);
    benchmark::DoNotOptimize(output);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * raw.size()));
}

void BM_EncodePartition(benchmark::State& state, const char* scheme_name) {
  const EncodingScheme scheme = EncodingScheme::FromName(scheme_name);
  for (auto _ : state) {
    Bytes encoded = EncodePartition(PartitionData().records(), scheme);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * PartitionData().size()));
}

void BM_DecodePartition(benchmark::State& state, const char* scheme_name) {
  const EncodingScheme scheme = EncodingScheme::FromName(scheme_name);
  const Bytes encoded = EncodePartition(PartitionData().records(), scheme);
  for (auto _ : state) {
    std::vector<Record> records = DecodePartition(encoded, scheme);
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * PartitionData().size()));
}

BENCHMARK_CAPTURE(BM_Compress, snappy, CodecKind::kSnappyLike);
BENCHMARK_CAPTURE(BM_Compress, gzip, CodecKind::kGzipLike);
BENCHMARK_CAPTURE(BM_Compress, lzma, CodecKind::kLzmaLike);
BENCHMARK_CAPTURE(BM_Decompress, snappy, CodecKind::kSnappyLike);
BENCHMARK_CAPTURE(BM_Decompress, gzip, CodecKind::kGzipLike);
BENCHMARK_CAPTURE(BM_Decompress, lzma, CodecKind::kLzmaLike);
BENCHMARK_CAPTURE(BM_EncodePartition, row_snappy, "ROW-SNAPPY");
BENCHMARK_CAPTURE(BM_EncodePartition, col_gzip, "COL-GZIP");
BENCHMARK_CAPTURE(BM_EncodePartition, col_lzma, "COL-LZMA");
BENCHMARK_CAPTURE(BM_DecodePartition, row_snappy, "ROW-SNAPPY");
BENCHMARK_CAPTURE(BM_DecodePartition, col_gzip, "COL-GZIP");
BENCHMARK_CAPTURE(BM_DecodePartition, col_lzma, "COL-LZMA");

}  // namespace
}  // namespace blot

int main(int argc, char** argv) {
  return blot::bench::RunAndReport(argc, argv, "micro_codec",
                                   "BENCH_codec.json");
}
