#!/usr/bin/env python3
"""Perf-regression tripwire over BENCH_*.json benchmark reports.

Compares freshly produced benchmark reports (schema ``blot.bench.v1``,
written by every ``bench/micro_*`` binary via ``bench/bench_common.h``)
against baselines committed at the repo root, and fails when any
*tracked* metric regressed by more than the threshold.

Only metrics marked ``"tracked": true`` participate: by convention those
are machine-independent ratios (speedups, overhead percentages), so the
comparison is stable across CI runner generations. Raw timings stay in
the reports as untracked context.

Direction is inferred from the metric name: names containing
``overhead`` or ``error``, or ending in ``_pct``, are lower-is-better;
everything else (speedups) is higher-is-better.

Usage:
    bench_tripwire.py BASELINE:CURRENT [BASELINE:CURRENT ...]
                      [--threshold-pct 25]

Exit codes: 0 ok, 1 regression(s) found, 2 usage / malformed report.
"""

import argparse
import json
import sys

SCHEMA = "blot.bench.v1"


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_tripwire: cannot read {path}: {exc}")
    if report.get("schema") != SCHEMA:
        sys.exit(
            f"bench_tripwire: {path} has schema "
            f"{report.get('schema')!r}, want {SCHEMA!r} — regenerate it "
            f"by running the benchmark binary"
        )
    return report


def tracked_metrics(report):
    return {
        m["name"]: float(m["value"])
        for m in report.get("metrics", [])
        if m.get("tracked")
    }


def lower_is_better(name):
    return "overhead" in name or "error" in name or name.endswith("_pct")


def compare(baseline_path, current_path, threshold_pct):
    baseline = load_report(baseline_path)
    current = load_report(current_path)
    base_metrics = tracked_metrics(baseline)
    cur_metrics = tracked_metrics(current)
    if not base_metrics:
        sys.exit(f"bench_tripwire: {baseline_path} has no tracked metrics")

    regressions = []
    for name, base in sorted(base_metrics.items()):
        if name not in cur_metrics:
            regressions.append((name, base, None, None))
            print(f"  MISSING  {name}: in baseline but not in current run")
            continue
        cur = cur_metrics[name]
        if base == 0:
            print(f"  skip     {name}: baseline is 0, nothing to compare")
            continue
        if lower_is_better(name):
            delta_pct = (cur - base) / abs(base) * 100.0
            arrow = "lower=better"
        else:
            delta_pct = (base - cur) / abs(base) * 100.0
            arrow = "higher=better"
        verdict = "ok"
        if delta_pct > threshold_pct:
            verdict = "REGRESSED"
            regressions.append((name, base, cur, delta_pct))
        elif delta_pct < -threshold_pct:
            verdict = "improved (consider refreshing the baseline)"
        print(
            f"  {verdict:9s} {name} ({arrow}): "
            f"baseline {base:g} -> current {cur:g} "
            f"({delta_pct:+.1f}% worse)"
        )

    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(f"  new      {name}: not in baseline (add it on next refresh)")
    return regressions


def main(argv):
    parser = argparse.ArgumentParser(
        description="Fail when tracked benchmark metrics regress."
    )
    parser.add_argument(
        "pairs",
        nargs="+",
        metavar="BASELINE:CURRENT",
        help="colon-separated baseline/current report paths",
    )
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=25.0,
        help="max tolerated regression per tracked metric (default 25)",
    )
    args = parser.parse_args(argv)

    all_regressions = []
    for pair in args.pairs:
        baseline_path, sep, current_path = pair.partition(":")
        if not sep or not baseline_path or not current_path:
            parser.error(f"malformed pair {pair!r}, want BASELINE:CURRENT")
        print(f"{baseline_path} vs {current_path}:")
        all_regressions += compare(
            baseline_path, current_path, args.threshold_pct
        )

    if all_regressions:
        print(
            f"\nFAIL: {len(all_regressions)} tracked metric(s) regressed "
            f"beyond {args.threshold_pct:g}%.\n"
            "If the regression is intended (e.g. a correctness fix with a "
            "known cost), apply the `perf-regression-ok` label to the PR "
            "and refresh the committed BENCH_*.json baselines."
        )
        return 1
    print(f"\nOK: no tracked metric regressed beyond {args.threshold_pct:g}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
