// Replica advisor: the paper's full selection pipeline on a fleet-analytics
// scenario. Given an expected query workload and a storage budget equal to
// conventional 3x replication, recommend the set of diverse replicas to
// materialize — and compare greedy vs exact (MIP) selection against the
// single-replica baseline and the ideal lower bound.
//
// Run: ./replica_advisor [total_records] [budget_multiplier]
#include <cstdio>
#include <cstdlib>

#include "core/advisor.h"
#include "gen/taxi_generator.h"

using namespace blot;

int main(int argc, char** argv) {
  const std::uint64_t total_records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 65'000'000ull;
  const double budget_multiplier =
      argc > 2 ? std::strtod(argv[2], nullptr) : 3.0;

  // A sample of the (conceptually much larger) dataset; the pipeline only
  // needs it to learn the spatio-temporal distribution and compression
  // ratios (Section V-A: "we only need a small portion of the data").
  TaxiFleetConfig fleet;
  fleet.num_taxis = 40;
  fleet.samples_per_taxi = 500;
  const Dataset sample = GenerateTaxiFleet(fleet);
  const STRange universe = fleet.Universe();

  // The expected workload: urban analytics with wildly varied ranges —
  // block-level hour queries up to city-month sweeps, weighted by how
  // often each class is issued (dashboards fire thousands of small
  // queries per full-table sweep).
  Workload workload;
  workload.Add({{0.02 * universe.Width(), 0.02 * universe.Height(),
                 3600.0}}, 500.0);          // block x hour (very frequent)
  workload.Add({{0.05 * universe.Width(), 0.05 * universe.Height(),
                 86400.0}}, 100.0);         // neighborhood x day
  workload.Add({{0.2 * universe.Width(), 0.2 * universe.Height(),
                 86400.0 * 7}}, 10.0);      // district x week
  workload.Add({{universe.Width(), universe.Height(),
                 86400.0}}, 2.0);           // whole city x day
  workload.Add({{universe.Width(), universe.Height(),
                 universe.Duration()}}, 0.2);  // full scan (rare)

  const double budget =
      budget_multiplier * double(total_records) * kRecordRowBytes;
  const CostModel model{EnvironmentModel::AmazonS3Emr()};
  std::printf("Dataset: %llu records (%.1f GB raw rows); budget %.1f GB "
              "(%.1fx raw)\n\n",
              static_cast<unsigned long long>(total_records),
              double(total_records) * kRecordRowBytes / 1e9, budget / 1e9,
              budget_multiplier);

  AdvisorOptions options;
  options.sample_records = 10000;
  options.candidate_space.spatial_counts = {16, 64, 256, 1024};
  options.candidate_space.temporal_counts = {16, 32, 64};

  std::printf("Measured compression ratios:\n");
  for (SelectionAlgorithm algorithm :
       {SelectionAlgorithm::kGreedy, SelectionAlgorithm::kMip}) {
    options.algorithm = algorithm;
    const AdvisorReport report = AdviseReplicas(
        sample, universe, total_records, workload, model, budget, options);
    if (algorithm == SelectionAlgorithm::kGreedy) {
      for (const auto& [name, ratio] : report.compression_ratios)
        std::printf("  %-12s %.3f\n", name.c_str(), ratio);
      std::printf("\nCandidates: %zu (after dominance pruning: %zu)\n",
                  report.candidates_before_pruning,
                  report.candidates.size());
    }
    std::printf("\n=== %s selection ===\n",
                algorithm == SelectionAlgorithm::kGreedy ? "Greedy"
                                                         : "MIP (exact)");
    for (const ReplicaConfig& config : report.chosen)
      std::printf("  + %s\n", config.Name().c_str());
    std::printf("  storage used: %.1f GB of %.1f GB\n",
                report.selection.storage_used / 1e9, budget / 1e9);
    std::printf("  workload cost: %.1f s   (single replica: %.1f s, "
                "ideal: %.1f s)\n",
                report.selection.workload_cost / 1000.0,
                report.best_single_cost_ms / 1000.0,
                report.ideal_cost_ms / 1000.0);
    std::printf("  speedup over single replica: %.2fx, approx ratio vs "
                "ideal: %.3f\n",
                report.SpeedupOverSingle(),
                report.selection.workload_cost / report.ideal_cost_ms);
  }
  return 0;
}
