// Fleet analytics: the paper's motivating workload pattern — "users use an
// equal-sized grid to decompose the space and then conduct simple
// statistics for each grid cell" (Section III-C1).
//
// Computes an occupancy heat map over a spatial grid and a day-by-day
// fleet utilization series, issuing every cell/day as a range query. Runs
// the whole workload twice — routed across diverse replicas vs pinned to
// one replica — and reports the estimated cost difference. The whole run
// executes with the metrics registry enabled, and the closing section is
// produced entirely from the registry snapshot: where queries were
// routed, how measured latency distributed, and what the codecs decoded.
//
// Run: ./fleet_analytics
#include <cstdio>
#include <vector>

#include "core/store.h"
#include "gen/taxi_generator.h"
#include "obs/metrics.h"

using namespace blot;

int main() {
  obs::MetricsRegistry::global().set_enabled(true);

  TaxiFleetConfig fleet;
  fleet.num_taxis = 60;
  fleet.samples_per_taxi = 800;
  Dataset dataset = GenerateTaxiFleet(fleet);
  const STRange universe = fleet.Universe();

  ThreadPool pool(4);
  BlotStore store(std::move(dataset), universe);
  store.AddReplica({{.spatial_partitions = 64, .temporal_partitions = 16},
                    EncodingScheme::FromName("COL-GZIP")},
                   &pool);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-SNAPPY")},
                   &pool);
  const CostModel model{EnvironmentModel::LocalHadoop()};

  // --- Heat map: 8x8 grid cells, whole month, % of samples occupied ---
  constexpr int kGrid = 8;
  std::printf("Occupancy heat map (%dx%d cells, whole month):\n", kGrid,
              kGrid);
  double routed_cost_ms = 0, pinned_cost_ms = 0;
  for (int gy = kGrid - 1; gy >= 0; --gy) {
    for (int gx = 0; gx < kGrid; ++gx) {
      const STRange cell = STRange::FromBounds(
          universe.x_min() + universe.Width() * gx / kGrid,
          universe.x_min() + universe.Width() * (gx + 1) / kGrid,
          universe.y_min() + universe.Height() * gy / kGrid,
          universe.y_min() + universe.Height() * (gy + 1) / kGrid,
          universe.t_min(), universe.t_max());
      const auto routed = store.Execute(cell, model, &pool);
      routed_cost_ms += routed.estimated_cost_ms;
      pinned_cost_ms += model.QueryCostMs(
          ReplicaSketch::FromReplica(store.replica(1)), cell);
      std::size_t occupied = 0;
      for (const Record& r : routed.result.records)
        if (r.status == 1) ++occupied;
      const double frac = routed.result.records.empty()
                              ? 0.0
                              : double(occupied) /
                                    double(routed.result.records.size());
      std::printf("%c", routed.result.records.empty() ? ' '
                        : frac > 0.6                  ? '#'
                        : frac > 0.45                 ? '+'
                        : frac > 0.3                  ? '.'
                                                      : '-');
    }
    std::printf("\n");
  }

  // --- Utilization series: average occupied fraction per day ---
  std::printf("\nDaily fleet utilization:\n");
  const int days =
      static_cast<int>(universe.Duration() / 86400.0 + 0.5);
  for (int day = 0; day < days; ++day) {
    const STRange slab = STRange::FromBounds(
        universe.x_min(), universe.x_max(), universe.y_min(),
        universe.y_max(), universe.t_min() + 86400.0 * day,
        universe.t_min() + 86400.0 * (day + 1));
    const auto routed = store.Execute(slab, model, &pool);
    routed_cost_ms += routed.estimated_cost_ms;
    pinned_cost_ms += model.QueryCostMs(
        ReplicaSketch::FromReplica(store.replica(1)), slab);
    std::size_t occupied = 0;
    for (const Record& r : routed.result.records)
      if (r.status == 1) ++occupied;
    const double frac =
        routed.result.records.empty()
            ? 0.0
            : double(occupied) / double(routed.result.records.size());
    std::printf("  day %02d  %5.1f%%  |", day + 1, frac * 100);
    for (int bar = 0; bar < static_cast<int>(frac * 40); ++bar)
      std::printf("=");
    std::printf("\n");
  }

  std::printf("\nEstimated workload cost, diverse-replica routing: %.1f s\n",
              routed_cost_ms / 1000.0);
  std::printf("Estimated workload cost, single pinned replica:   %.1f s\n",
              pinned_cost_ms / 1000.0);
  std::printf("Routing speedup: %.2fx\n", pinned_cost_ms / routed_cost_ms);

  // --- Observability recap, straight from the metrics registry ---
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().Snapshot();
  std::printf("\nFrom the metrics registry:\n");
  for (std::size_t j = 0; j < store.NumReplicas(); ++j) {
    const std::string name = store.replica(j).config().Name();
    const obs::CounterSnapshot* routed =
        snap.FindCounter("query.routed_total", {{"replica", name}});
    std::printf("  routed to %-20s %llu queries\n", name.c_str(),
                static_cast<unsigned long long>(routed ? routed->value : 0));
  }
  if (const auto* measured = snap.FindHistogram("query.measured_ms"))
    std::printf("  measured latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f "
                "ms (%llu queries)\n",
                measured->Percentile(50), measured->Percentile(90),
                measured->Percentile(99),
                static_cast<unsigned long long>(measured->count));
  if (const auto* scanned = snap.FindCounter("query.records_scanned_total"))
    if (const auto* returned =
            snap.FindCounter("query.records_returned_total"))
      std::printf("  scan selectivity: %llu scanned -> %llu returned\n",
                  static_cast<unsigned long long>(scanned->value),
                  static_cast<unsigned long long>(returned->value));
  for (const obs::CounterSnapshot& c : snap.counters)
    if (c.name == "codec.decode_bytes_in_total" && c.value > 0)
      std::printf("  codec %-8s decoded %.2f MiB compressed\n",
                  c.labels[0].second.c_str(), double(c.value) / (1 << 20));
  return 0;
}
