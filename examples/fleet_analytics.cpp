// Fleet analytics: the paper's motivating workload pattern — "users use an
// equal-sized grid to decompose the space and then conduct simple
// statistics for each grid cell" (Section III-C1).
//
// Computes an occupancy heat map over a spatial grid and a day-by-day
// fleet utilization series, issuing every cell/day as a range query. Runs
// the whole workload twice — routed across diverse replicas vs pinned to
// one replica — and reports the estimated cost difference.
//
// Run: ./fleet_analytics
#include <cstdio>
#include <vector>

#include "core/store.h"
#include "gen/taxi_generator.h"

using namespace blot;

int main() {
  TaxiFleetConfig fleet;
  fleet.num_taxis = 60;
  fleet.samples_per_taxi = 800;
  Dataset dataset = GenerateTaxiFleet(fleet);
  const STRange universe = fleet.Universe();

  ThreadPool pool(4);
  BlotStore store(std::move(dataset), universe);
  store.AddReplica({{.spatial_partitions = 64, .temporal_partitions = 16},
                    EncodingScheme::FromName("COL-GZIP")},
                   &pool);
  store.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                    EncodingScheme::FromName("ROW-SNAPPY")},
                   &pool);
  const CostModel model{EnvironmentModel::LocalHadoop()};

  // --- Heat map: 8x8 grid cells, whole month, % of samples occupied ---
  constexpr int kGrid = 8;
  std::printf("Occupancy heat map (%dx%d cells, whole month):\n", kGrid,
              kGrid);
  double routed_cost_ms = 0, pinned_cost_ms = 0;
  for (int gy = kGrid - 1; gy >= 0; --gy) {
    for (int gx = 0; gx < kGrid; ++gx) {
      const STRange cell = STRange::FromBounds(
          universe.x_min() + universe.Width() * gx / kGrid,
          universe.x_min() + universe.Width() * (gx + 1) / kGrid,
          universe.y_min() + universe.Height() * gy / kGrid,
          universe.y_min() + universe.Height() * (gy + 1) / kGrid,
          universe.t_min(), universe.t_max());
      const auto routed = store.Execute(cell, model, &pool);
      routed_cost_ms += routed.estimated_cost_ms;
      pinned_cost_ms += model.QueryCostMs(
          ReplicaSketch::FromReplica(store.replica(1)), cell);
      std::size_t occupied = 0;
      for (const Record& r : routed.result.records)
        if (r.status == 1) ++occupied;
      const double frac = routed.result.records.empty()
                              ? 0.0
                              : double(occupied) /
                                    double(routed.result.records.size());
      std::printf("%c", routed.result.records.empty() ? ' '
                        : frac > 0.6                  ? '#'
                        : frac > 0.45                 ? '+'
                        : frac > 0.3                  ? '.'
                                                      : '-');
    }
    std::printf("\n");
  }

  // --- Utilization series: average occupied fraction per day ---
  std::printf("\nDaily fleet utilization:\n");
  const int days =
      static_cast<int>(universe.Duration() / 86400.0 + 0.5);
  for (int day = 0; day < days; ++day) {
    const STRange slab = STRange::FromBounds(
        universe.x_min(), universe.x_max(), universe.y_min(),
        universe.y_max(), universe.t_min() + 86400.0 * day,
        universe.t_min() + 86400.0 * (day + 1));
    const auto routed = store.Execute(slab, model, &pool);
    routed_cost_ms += routed.estimated_cost_ms;
    pinned_cost_ms += model.QueryCostMs(
        ReplicaSketch::FromReplica(store.replica(1)), slab);
    std::size_t occupied = 0;
    for (const Record& r : routed.result.records)
      if (r.status == 1) ++occupied;
    const double frac =
        routed.result.records.empty()
            ? 0.0
            : double(occupied) / double(routed.result.records.size());
    std::printf("  day %02d  %5.1f%%  |", day + 1, frac * 100);
    for (int bar = 0; bar < static_cast<int>(frac * 40); ++bar)
      std::printf("=");
    std::printf("\n");
  }

  std::printf("\nEstimated workload cost, diverse-replica routing: %.1f s\n",
              routed_cost_ms / 1000.0);
  std::printf("Estimated workload cost, single pinned replica:   %.1f s\n",
              pinned_cost_ms / 1000.0);
  std::printf("Routing speedup: %.2fx\n", pinned_cost_ms / routed_cost_ms);
  return 0;
}
