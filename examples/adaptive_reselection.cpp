// Adaptive replica reselection under workload drift.
//
// The paper's greedy selector exists for exactly this deployment: "the
// workload is changing rapidly so that the replica set should be
// re-selected frequently" (Section III-D). This example simulates a
// production loop: queries stream in, a WorkloadTracker folds them into a
// decayed workload estimate, and when the DriftMonitor reports the live
// workload has moved away from the one the replica set was selected for,
// the greedy selector re-runs and the (simulated) replica set is swapped.
//
// The stream has two regimes: daytime analytics (small spatial queries)
// for the first half, then month-end reporting (large spatio-temporal
// sweeps). Watch the drift distance rise at the switch and the
// reselection improve the cost of the new regime.
//
// Run: ./adaptive_reselection
#include <cmath>
#include <cstdio>

#include "core/candidates.h"
#include "core/drift.h"
#include "core/mip_selection.h"
#include "gen/taxi_generator.h"

using namespace blot;

namespace {

struct Regime {
  const char* name;
  RangeSize base;  // jittered per query
};

SelectionResult Reselect(const SelectionInput& base, const Workload& workload,
                         const Dataset& sample, const STRange& universe,
                         const CostModel& model,
                         const std::map<std::string, double>& ratios,
                         const std::vector<PartitioningSpec>& partitionings,
                         std::uint64_t total_records, double budget) {
  (void)base;
  CandidateMatrixResult matrix = BuildSelectionInputGrouped(
      sample, universe, partitionings, AllEncodingSchemes(), ratios,
      total_records, workload, model, budget);
  return SelectGreedy(matrix.input);
}

}  // namespace

int main() {
  TaxiFleetConfig fleet;
  fleet.num_taxis = 30;
  fleet.samples_per_taxi = 400;
  const Dataset sample = GenerateTaxiFleet(fleet);
  const STRange universe = fleet.Universe();
  const CostModel model{EnvironmentModel::AmazonS3Emr()};
  const auto ratios =
      MeasureCompressionRatios(sample, AllEncodingSchemes(), 8000);
  const std::uint64_t total_records = 650'000'000;
  const double budget = 3.0 * double(total_records) * kRecordRowBytes * 0.4;
  std::vector<PartitioningSpec> partitionings;
  for (const std::size_t s : {16u, 64u, 256u, 1024u})
    for (const std::size_t t : {16u, 64u})
      partitionings.push_back(
          {.spatial_partitions = s, .temporal_partitions = t});

  const Regime regimes[] = {
      {"daytime analytics (small ranges)",
       {universe.Width() * 0.02, universe.Height() * 0.02, 3600.0 * 2}},
      {"month-end reporting (large sweeps)",
       {universe.Width() * 0.7, universe.Height() * 0.7,
        86400.0 * 14}},
  };

  WorkloadTracker tracker(0.98);
  Rng rng(42);

  // Bootstrap: select for the first regime.
  Workload bootstrap;
  bootstrap.Add({regimes[0].base}, 1.0);
  SelectionResult current =
      Reselect({}, bootstrap, sample, universe, model, ratios, partitionings,
               total_records, budget);
  DriftMonitor monitor(bootstrap, /*threshold=*/1.0);
  std::printf("Initial selection for %s: %zu replicas, predicted cost "
              "%.0f s\n\n",
              regimes[0].name, current.chosen.size(),
              current.workload_cost / 1000.0);

  std::printf("%6s  %-36s %10s %10s\n", "query", "regime", "drift",
              "action");
  int reselections = 0;
  for (int step = 1; step <= 400; ++step) {
    const Regime& regime = regimes[step <= 200 ? 0 : 1];
    const auto jitter = [&rng](double v) {
      return v * std::exp(rng.NextGaussian() * 0.2);
    };
    tracker.Observe({jitter(regime.base.w), jitter(regime.base.h),
                     jitter(regime.base.t)});

    if (step % 50 != 0) continue;
    const Workload live = tracker.Snapshot(4);
    const double distance = monitor.DistanceTo(live);
    const bool drifted = monitor.HasDrifted(live);
    std::printf("%6d  %-36s %10.3f %10s\n", step, regime.name, distance,
                drifted ? "RESELECT" : "-");
    if (drifted) {
      current = Reselect({}, live, sample, universe, model, ratios,
                         partitionings, total_records, budget);
      monitor.Rebase(live);
      ++reselections;
      std::printf("        -> new set (%zu replicas), predicted cost "
                  "%.0f s on the live workload\n",
                  current.chosen.size(), current.workload_cost / 1000.0);
    }
  }
  std::printf("\nReselections triggered: %d (expected: 1, at the regime "
              "switch)\n",
              reselections);
  return reselections >= 1 ? 0 : 1;
}
