// Failure recovery with diverse replicas (paper Section II-E): replicas
// with different physical organizations "can recover each other when
// failures occur because they share the same logical view of the data".
//
// This example corrupts a storage unit of one replica, shows the
// corruption being detected by checksums, rebuilds the lost replica from a
// differently-organized survivor, and verifies queries again return the
// exact ground truth. It then corrupts the replica a second time and lets
// the store handle it on its own: the query fails over to the survivor,
// the faulty partitions are quarantined, and the sync repair policy heals
// them before Execute returns (docs/robustness.md).
//
// Run: ./failure_recovery
#include <algorithm>
#include <cstdio>

#include "core/store.h"
#include "core/workload.h"
#include "gen/taxi_generator.h"
#include "util/error.h"

using namespace blot;

int main() {
  TaxiFleetConfig fleet;
  fleet.num_taxis = 30;
  fleet.samples_per_taxi = 600;
  Dataset dataset = GenerateTaxiFleet(fleet);
  const Dataset ground_truth = dataset;
  const STRange universe = fleet.Universe();

  ThreadPool pool(4);
  BlotStore store(std::move(dataset), universe);
  const std::size_t row_replica = store.AddReplica(
      {{.spatial_partitions = 16, .temporal_partitions = 8},
       EncodingScheme::FromName("ROW-SNAPPY")},
      &pool);
  const std::size_t col_replica = store.AddReplica(
      {{.spatial_partitions = 64, .temporal_partitions = 16},
       EncodingScheme::FromName("COL-LZMA")},
      &pool);
  std::printf("Built 2 diverse replicas: %s (%.1f MiB), %s (%.1f MiB)\n",
              store.replica(row_replica).config().Name().c_str(),
              double(store.replica(row_replica).StorageBytes()) / (1 << 20),
              store.replica(col_replica).config().Name().c_str(),
              double(store.replica(col_replica).StorageBytes()) / (1 << 20));

  // Simulate a disk fault: flip bytes in several storage units of the
  // column replica.
  Replica& victim = store.mutable_replica(col_replica);
  for (std::size_t p = 0; p < victim.NumPartitions(); p += 97) {
    StoredPartition& unit = victim.MutablePartition(p);
    if (!unit.data.empty()) unit.data[unit.data.size() / 3] ^= 0x5A;
  }
  std::printf("\nInjected corruption into replica %zu storage units.\n",
              col_replica);
  try {
    victim.DecodePartitionRecords(0);
    std::printf("ERROR: corruption was not detected!\n");
    return 1;
  } catch (const CorruptData& e) {
    std::printf("Checksum caught it on read: %s\n", e.what());
  }

  // Recover the column replica from the (differently organized) row
  // replica and verify the logical view is bit-exact.
  std::printf("\nRecovering replica %zu from replica %zu...\n", col_replica,
              row_replica);
  const std::uint64_t restored =
      store.RecoverReplicaFrom(col_replica, row_replica, &pool);
  std::printf("Restored %llu records.\n",
              static_cast<unsigned long long>(restored));

  auto sorted = [](std::vector<Record> r) {
    std::sort(r.begin(), r.end(), [](const Record& a, const Record& b) {
      return std::tie(a.oid, a.time, a.x, a.y, a.speed, a.heading, a.status,
                      a.passengers, a.fare_cents) <
             std::tie(b.oid, b.time, b.x, b.y, b.speed, b.heading, b.status,
                      b.passengers, b.fare_cents);
    });
    return r;
  };
  const bool logical_match =
      sorted(store.replica(col_replica).Reconstruct().records()) ==
      sorted(ground_truth.records());
  std::printf("Logical view matches ground truth: %s\n",
              logical_match ? "YES" : "NO");

  // And the recovered replica serves queries correctly again.
  const CostModel model{EnvironmentModel::LocalHadoop()};
  Rng rng(7);
  const STRange query = SampleQueryInstance(
      {{universe.Width() * 0.2, universe.Height() * 0.2,
        universe.Duration() * 0.2}},
      universe, rng);
  const auto routed = store.Execute(query, model, &pool);
  const auto expected = ground_truth.FilterByRange(query);
  std::printf("Post-recovery query: %zu records (expected %zu) -> %s\n",
              routed.result.records.size(), expected.size(),
              routed.result.records.size() == expected.size() ? "OK"
                                                              : "MISMATCH");

  // Act two: break the row replica's copy of everything the query needs
  // and let the store fend for itself. Execute fails over to the column
  // replica, quarantines the faulty units, and (sync repair policy, the
  // default) re-encodes them from the survivor before returning.
  std::printf("\nCorrupting replica %zu's copies of the query's "
              "partitions...\n", row_replica);
  for (const std::size_t p :
       store.replica(row_replica).index().InvolvedPartitions(query)) {
    StoredPartition& unit =
        store.mutable_replica(row_replica).MutablePartition(p);
    if (!unit.data.empty()) unit.data[unit.data.size() / 2] ^= 0xA5;
  }
  const auto failed_over = store.Execute(query, model, &pool);
  std::printf("Failover query: served by %s after %zu attempt(s)%s, "
              "%zu records -> %s\n",
              failed_over.served_by.c_str(), failed_over.attempts,
              failed_over.degraded ? " (degraded)" : "",
              failed_over.result.records.size(),
              failed_over.result.records.size() == expected.size()
                  ? "OK"
                  : "MISMATCH");
  const HealthMap::Counts counts = store.health().CountsFor(row_replica);
  std::printf("Self-healed: %zu partitions quarantined after repair "
              "(%zu ok, %zu suspect).\n",
              counts.quarantined, counts.ok, counts.suspect);

  const bool healed = counts.quarantined == 0 &&
                      failed_over.result.records.size() == expected.size();
  return logical_match && healed ? 0 : 1;
}
