// Partial (hotspot) replication — the paper's future-work extension
// (Section VII) made concrete.
//
// Taxi GPS data is heavily concentrated in hotspot districts, and so are
// the queries. This example finds the densest spatial box holding ~60% of
// the records, materializes a finely-partitioned partial replica of just
// that box next to one full replica, and compares three deployments under
// the same storage accounting:
//
//   A. one full replica (baseline);
//   B. two full replicas (conventional diverse replication);
//   C. one full replica + hotspot partial (partial replication).
//
// C approaches B's query performance on the hotspot-heavy workload at a
// fraction of B's extra storage.
//
// Run: ./hotspot_replication
#include <cstdio>

#include "core/partial.h"
#include "core/store.h"
#include "gen/taxi_generator.h"

using namespace blot;

int main() {
  TaxiFleetConfig fleet;
  fleet.num_taxis = 80;
  fleet.samples_per_taxi = 1500;
  Dataset dataset = GenerateTaxiFleet(fleet);
  const STRange universe = fleet.Universe();
  const STRange hotspot = DensestSpatialBox(dataset, universe, 0.6);
  std::printf("Hotspot: %.0f%% of records in %.0f%% of the area\n",
              100.0 * double(dataset.FilterByRange(hotspot).size()) /
                  double(dataset.size()),
              100.0 * hotspot.Width() * hotspot.Height() /
                  (universe.Width() * universe.Height()));

  ThreadPool pool(4);
  BlotStore store(std::move(dataset), universe);
  const ReplicaConfig coarse_full{
      {.spatial_partitions = 4, .temporal_partitions = 4},
      EncodingScheme::FromName("ROW-SNAPPY")};
  const ReplicaConfig fine_full{
      {.spatial_partitions = 64, .temporal_partitions = 16},
      EncodingScheme::FromName("COL-GZIP")};
  const ReplicaConfig fine_partial{
      {.spatial_partitions = 64, .temporal_partitions = 16},
      EncodingScheme::FromName("COL-GZIP")};

  const std::size_t full0 = store.AddReplica(coarse_full, &pool);
  const std::size_t full1 = store.AddReplica(fine_full, &pool);
  const std::size_t partial =
      store.AddPartialReplica(fine_partial, hotspot, &pool);

  const double full0_gb = double(store.replica(full0).StorageBytes()) / 1e9;
  const double full1_gb = double(store.replica(full1).StorageBytes()) / 1e9;
  const double partial_gb =
      double(store.replica(partial).StorageBytes()) / 1e9;
  std::printf("Storage: full %s %.3f GB; full %s %.3f GB; partial %s "
              "%.3f GB (%.0f%% of its full version)\n\n",
              coarse_full.Name().c_str(), full0_gb, fine_full.Name().c_str(),
              full1_gb, fine_partial.Name().c_str(), partial_gb,
              100.0 * partial_gb / full1_gb);

  // Hotspot-heavy workload: frequent small queries inside the hotspot,
  // occasional city-wide sweeps.
  const CostModel model{EnvironmentModel::LocalHadoop()};
  Rng rng(9);
  struct Deployment {
    const char* name;
    std::vector<std::size_t> replicas;
  };
  const Deployment deployments[] = {
      {"A: coarse full only", {full0}},
      {"B: coarse + fine full", {full0, full1}},
      {"C: coarse full + hotspot partial", {full0, partial}},
  };

  std::printf("%-36s %14s %12s\n", "deployment", "est. cost (s)",
              "storage(GB)");
  for (const Deployment& d : deployments) {
    double total_ms = 0;
    Rng query_rng(1234);  // same query stream for every deployment
    for (int i = 0; i < 60; ++i) {
      STRange query;
      if (i % 6 != 0) {
        query = SampleQueryInstance(
            {{hotspot.Width() * 0.08, hotspot.Height() * 0.08,
              universe.Duration() * 0.02}},
            hotspot, query_rng);
      } else {
        query = SampleQueryInstance(
            {{universe.Width() * 0.8, universe.Height() * 0.8,
              universe.Duration() * 0.5}},
            universe, query_rng);
      }
      // Route within the deployment's replicas only.
      double best = 1e300;
      for (std::size_t r : d.replicas) {
        if (!store.IsFullReplica(r) &&
            !store.replica(r).universe().Contains(query))
          continue;
        best = std::min(best,
                        model.QueryCostMs(
                            ReplicaSketch::FromReplica(store.replica(r)),
                            query));
      }
      total_ms += best;
    }
    double storage_gb = 0;
    for (std::size_t r : d.replicas)
      storage_gb += double(store.replica(r).StorageBytes()) / 1e9;
    std::printf("%-36s %14.1f %12.3f\n", d.name, total_ms / 1000.0,
                storage_gb);
  }

  std::printf("\nAnd the partial replica really answers hotspot queries:\n");
  const STRange probe = SampleQueryInstance(
      {{hotspot.Width() * 0.08, hotspot.Height() * 0.08,
        universe.Duration() * 0.02}},
      hotspot, rng);
  const auto routed = store.Execute(probe, model, &pool);
  std::printf("  probe query -> replica %zu (%s), %zu records\n",
              routed.replica_index,
              store.replica(routed.replica_index).config().Name().c_str(),
              routed.result.records.size());
  return 0;
}
