// Live dashboard: streaming ingestion + shared-scan batched analytics.
//
// A running BLOT deployment in one loop: GPS records stream in
// continuously (StreamingStore delta + periodic compaction), and every
// "tick" a dashboard refreshes an occupancy heat map by issuing a grid of
// range queries as one shared-scan batch routed across diverse replicas.
// The metrics registry is on for the whole run; each tick reports the
// batch's wall clock and the shared-scan savings from the registry, and
// the run closes with a registry-derived summary.
//
// Run: ./live_dashboard
#include <cstdio>

#include "core/streaming.h"
#include "gen/taxi_generator.h"
#include "obs/metrics.h"

using namespace blot;

int main() {
  obs::MetricsRegistry::global().set_enabled(true);
  // Bootstrap: the first week of data, bulk-loaded into two diverse
  // replicas. The universe spans the whole month so later records fit.
  TaxiFleetConfig fleet;
  fleet.num_taxis = 40;
  fleet.samples_per_taxi = 1200;
  const Dataset month = GenerateTaxiFleet(fleet);
  const STRange universe = fleet.Universe();
  const double week_end = universe.t_min() + 7 * 86400.0;

  Dataset bootstrap, stream;
  for (const Record& r : month.records()) {
    if (static_cast<double>(r.time) < week_end) {
      bootstrap.Append(r);
    } else {
      stream.Append(r);
    }
  }
  stream.SortByTime();
  std::printf("Bootstrap: %zu records; stream: %zu records to ingest\n",
              bootstrap.size(), stream.size());

  BlotStore base(std::move(bootstrap), universe);
  ThreadPool pool(4);
  base.AddReplica({{.spatial_partitions = 4, .temporal_partitions = 4},
                   EncodingScheme::FromName("ROW-SNAPPY")},
                  &pool);
  base.AddReplica({{.spatial_partitions = 64, .temporal_partitions = 16},
                   EncodingScheme::FromName("COL-GZIP")},
                  &pool);
  StreamingStore store(std::move(base), /*compact_threshold=*/8000, &pool);
  const CostModel model{EnvironmentModel::LocalHadoop()};

  // Ingest the remaining weeks, refreshing the dashboard periodically.
  constexpr int kTicks = 6;
  const std::size_t per_tick = stream.size() / kTicks;
  std::size_t cursor = 0;
  for (int tick = 1; tick <= kTicks; ++tick) {
    const std::size_t until =
        tick == kTicks ? stream.size() : cursor + per_tick;
    std::size_t compactions_before = store.compactions();
    for (; cursor < until; ++cursor)
      store.Ingest(stream.records()[cursor]);

    // Dashboard refresh: last 24h occupancy heat map as one batch.
    const double now =
        static_cast<double>(stream.records()[cursor - 1].time);
    constexpr int kGrid = 6;
    std::vector<STRange> cells;
    for (int gx = 0; gx < kGrid; ++gx)
      for (int gy = 0; gy < kGrid; ++gy)
        cells.push_back(STRange::FromBounds(
            universe.x_min() + universe.Width() * gx / kGrid,
            universe.x_min() + universe.Width() * (gx + 1) / kGrid,
            universe.y_min() + universe.Height() * gy / kGrid,
            universe.y_min() + universe.Height() * (gy + 1) / kGrid,
            now - 86400.0, now));
    const auto batch = store.ExecuteBatch(cells, model);

    std::printf("\ntick %d: ingested %zu records (%zu compactions so "
                "far, delta %zu)\n",
                tick, cursor, store.compactions(), store.DeltaSize());
    std::printf("  last-24h heat map (batch: %zu partitions decoded vs "
                "%zu naive, %.2f ms)\n",
                batch.stats.partitions_scanned,
                batch.naive_partition_scans, batch.measured_ms);
    for (int gy = kGrid - 1; gy >= 0; --gy) {
      std::printf("  ");
      for (int gx = 0; gx < kGrid; ++gx) {
        const auto& records = batch.per_query[gx * kGrid + gy];
        std::size_t occupied = 0;
        for (const Record& r : records)
          if (r.status == 1) ++occupied;
        const double rate = records.empty()
                                ? 0.0
                                : double(occupied) / double(records.size());
        std::printf("%c", records.empty() ? '.'
                          : rate > 0.55   ? '#'
                          : rate > 0.45   ? '+'
                                          : '-');
      }
      std::printf("\n");
    }
    if (store.compactions() > compactions_before)
      std::printf("  (compacted the delta into all replicas this tick)\n");
  }
  std::printf("\nFinal: %llu records across %zu replicas, %zu "
              "compactions.\n",
              static_cast<unsigned long long>(store.TotalRecords()),
              store.store().NumReplicas(), store.compactions());

  // Close with the registry's view of the whole run.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().Snapshot();
  std::printf("From the metrics registry:\n");
  if (const auto* batches = snap.FindCounter("query.batches_total"))
    if (const auto* queries = snap.FindCounter("query.batch_queries_total"))
      std::printf("  %llu dashboard batches, %llu cell queries\n",
                  static_cast<unsigned long long>(batches->value),
                  static_cast<unsigned long long>(queries->value));
  if (const auto* saved =
          snap.FindCounter("query.batch_shared_scans_saved_total"))
    std::printf("  shared scans saved %llu partition decodes\n",
                static_cast<unsigned long long>(saved->value));
  if (const auto* batch_ms = snap.FindHistogram("query.batch_measured_ms"))
    std::printf("  batch wall clock: mean %.2f ms, p90 %.2f ms\n",
                batch_ms->Mean(), batch_ms->Percentile(90));
  if (const auto* wait = snap.FindHistogram("threadpool.queue_wait_ms"))
    if (const auto* task = snap.FindHistogram("threadpool.task_ms"))
      std::printf("  thread pool: %llu tasks, queue wait p90 %.3f ms, "
                  "task p90 %.3f ms\n",
                  static_cast<unsigned long long>(task->count),
                  wait->Percentile(90), task->Percentile(90));
  return 0;
}
