// Quickstart: build a BLOT store with two diverse replicas over a synthetic
// taxi trace, route range queries through the cost model, and show why
// different queries prefer different physical organizations.
//
// Run: ./quickstart
#include <cstdio>

#include "core/store.h"
#include "core/workload.h"
#include "gen/taxi_generator.h"

using namespace blot;

int main() {
  // 1. A month of GPS data from a small taxi fleet (deterministic).
  TaxiFleetConfig fleet;
  fleet.num_taxis = 150;
  fleet.samples_per_taxi = 2000;
  std::printf("Generating %zu records from %zu taxis...\n",
              fleet.TotalRecords(), fleet.num_taxis);
  Dataset dataset = GenerateTaxiFleet(fleet);
  const STRange universe = fleet.Universe();

  // 2. A store with two diverse replicas: coarse partitions in a fast row
  // format, and fine partitions in a compact column format.
  BlotStore store(std::move(dataset), universe);
  ThreadPool pool(4);
  const ReplicaConfig coarse{
      {.spatial_partitions = 4, .temporal_partitions = 4},
      EncodingScheme::FromName("ROW-SNAPPY")};
  const ReplicaConfig fine{
      {.spatial_partitions = 64, .temporal_partitions = 16},
      EncodingScheme::FromName("COL-GZIP")};
  store.AddReplica(coarse, &pool);
  store.AddReplica(fine, &pool);
  std::printf("Replica 0: %-22s %8.2f MiB\n", coarse.Name().c_str(),
              double(store.replica(0).StorageBytes()) / (1 << 20));
  std::printf("Replica 1: %-22s %8.2f MiB\n", fine.Name().c_str(),
              double(store.replica(1).StorageBytes()) / (1 << 20));

  // 3. Route queries of very different sizes; the cost model (local
  // Hadoop environment) picks the cheapest replica for each.
  const CostModel model{EnvironmentModel::LocalHadoop()};
  Rng rng(2024);
  struct NamedQuery {
    const char* label;
    double fraction;  // of each universe dimension
  };
  const NamedQuery queries[] = {{"city block, one hour", 0.01},
                                {"district, one day", 0.1},
                                {"half city, one week", 0.45},
                                {"whole city, whole month", 1.0}};
  std::printf("\n%-26s %-22s %12s %10s\n", "query", "routed to",
              "est. cost(s)", "records");
  for (const NamedQuery& q : queries) {
    const STRange range = SampleQueryInstance(
        {{universe.Width() * q.fraction, universe.Height() * q.fraction,
          universe.Duration() * q.fraction}},
        universe, rng);
    const BlotStore::RoutedResult routed = store.Execute(range, model, &pool);
    std::printf("%-26s %-22s %12.1f %10zu\n", q.label,
                store.replica(routed.replica_index).config().Name().c_str(),
                routed.estimated_cost_ms / 1000.0,
                routed.result.records.size());
  }
  std::printf(
      "\nSmall queries route to the finely-partitioned replica (better\n"
      "pruning); large queries route to the coarse one (fewer per-partition\n"
      "startup costs). That gap is what diverse replicas exploit.\n");
  return 0;
}
