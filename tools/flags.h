// Minimal command-line flag parsing for the blotctl and blotfuzz tools.
//
// Syntax: `blotctl <command> --flag value --flag2=value ...` (both value
// forms are accepted; blotfuzz repro lines use the `=` form). Flags are
// string-typed at parse time with typed accessors; unknown flags are an
// error so typos fail fast.
#ifndef BLOT_TOOLS_FLAGS_H_
#define BLOT_TOOLS_FLAGS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/error.h"

namespace blot::tools {

class Flags {
 public:
  // Parses argv[first..argc); every flag must start with "--" and take
  // exactly one value, except flags listed in `flag_only`, which take
  // none and parse as "1" (e.g. --trace). `allowed` is the set of
  // recognized flag names (without the dashes).
  Flags(int argc, char** argv, int first,
        const std::set<std::string>& allowed,
        const std::set<std::string>& flag_only = {}) {
    for (int i = first; i < argc; ++i) {
      std::string flag = argv[i];
      require(flag.rfind("--", 0) == 0, "unexpected argument: " + flag);
      flag = flag.substr(2);
      std::optional<std::string> inline_value;
      if (const std::size_t eq = flag.find('='); eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
      }
      require(allowed.contains(flag) || flag_only.contains(flag),
              "unknown flag: --" + flag);
      if (flag_only.contains(flag)) {
        require(!inline_value.has_value(),
                "flag --" + flag + " takes no value");
        values_.emplace(flag, "1");
        continue;
      }
      if (inline_value.has_value()) {
        values_[flag] = *inline_value;
        continue;
      }
      require(i + 1 < argc, "flag --" + flag + " needs a value");
      values_[flag] = argv[++i];
    }
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

  std::string GetString(const std::string& name,
                        std::optional<std::string> fallback = {}) const {
    const auto it = values_.find(name);
    if (it != values_.end()) return it->second;
    require(fallback.has_value(), "missing required flag --" + name);
    return *fallback;
  }

  std::int64_t GetInt(const std::string& name,
                      std::optional<std::int64_t> fallback = {}) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      require(fallback.has_value(), "missing required flag --" + name);
      return *fallback;
    }
    return Parse<std::int64_t>(name, it->second,
                               [](const std::string& v) { return std::stoll(v); });
  }

  // Full unsigned 64-bit range; blotfuzz repro seeds routinely exceed
  // INT64_MAX, so these must not funnel through stoll.
  std::uint64_t GetUint64(const std::string& name,
                          std::optional<std::uint64_t> fallback = {}) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      require(fallback.has_value(), "missing required flag --" + name);
      return *fallback;
    }
    // stoull silently wraps negative input; reject it explicitly.
    require(it->second.find('-') == std::string::npos,
            "flag --" + name + ": value must be non-negative: " + it->second);
    return Parse<std::uint64_t>(
        name, it->second, [](const std::string& v) { return std::stoull(v); });
  }

  double GetDouble(const std::string& name,
                   std::optional<double> fallback = {}) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      require(fallback.has_value(), "missing required flag --" + name);
      return *fallback;
    }
    return Parse<double>(name, it->second,
                         [](const std::string& v) { return std::stod(v); });
  }

 private:
  // Maps std::sto* parse failures (invalid_argument, out_of_range) to
  // InvalidArgument so tools report them as usage errors instead of
  // dying via std::terminate.
  template <typename T, typename Fn>
  static T Parse(const std::string& name, const std::string& value, Fn parse) {
    try {
      return parse(value);
    } catch (const std::exception&) {
      throw InvalidArgument("flag --" + name + ": bad value: " + value);
    }
  }

  std::map<std::string, std::string> values_;
};

// Splits "a,b,c" into doubles.
inline std::vector<double> SplitDoubles(const std::string& csv) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    require(!token.empty(), "empty element in list: " + csv);
    out.push_back(std::stod(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace blot::tools

#endif  // BLOT_TOOLS_FLAGS_H_
