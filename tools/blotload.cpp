// blotload: macro-benchmark driver for the serving layer (src/serve).
//
// Replays a synthetic query workload against a QueryServer in two modes:
//
//   closed loop — C client threads each issue Submit+get back-to-back for
//     the phase duration, once per worker-thread count in --threads. The
//     headline tracked metric is the throughput scaling from 1 to 8
//     request workers: with --io-ms emulating the storage round-trip of
//     the paper's remote environments, queries overlap their waits and
//     the ratio is machine-independent (it measures the scheduler, not
//     the host's core count).
//
//   open loop — a dispatcher offers queries at a fixed rate (a multiple
//     of the server's nominal capacity) against a small admission budget;
//     the server must shed the excess with structured OverloadedError
//     while every admitted query completes. Tracked: the shed rate.
//
//   latency faults — the deterministic fault injector arms heavy-tailed
//     (pareto) per-target read stalls and the workload replays twice
//     under a per-query deadline with graceful degradation on: once with
//     hedged reads off, once on. Tracked: the hedging-off deadline miss
//     rate, and the p99 improvement hedging buys at equal correctness
//     (docs/robustness.md).
//
// Correctness bar: every admitted query's record count must match the
// single-threaded reference count for its query shape, in every phase;
// shed queries are counted, never wrong; a partial result may only
// undercount, never fabricate records. Exit 0 only when consistent.
//
// Results go to BENCH_serving.json (or --out, schema blot.bench.v1) for
// scripts/bench_tripwire.py. Usage:
//
//   blotload [--out path] [--mode all|closed|open|latency] [--records N]
//            [--shapes K] [--threads 1,8] [--clients C] [--duration-s S]
//            [--io-ms MS] [--overload-factor F] [--max-inflight N]
//            [--cache-mb MB] [--seed S]
//            [--deadline-ms D] [--hedge-ms H]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/fault_injection.h"
#include "core/partition_cache.h"
#include "core/store.h"
#include "serve/server.h"
#include "tools/flags.h"
#include "util/stats.h"

using namespace blot;

namespace {

struct PhaseResult {
  double elapsed_s = 0.0;
  std::uint64_t completed = 0;
  std::vector<double> latencies_ms;

  double Qps() const {
    return elapsed_s > 0 ? double(completed) / elapsed_s : 0.0;
  }
};

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// C clients hammer the server back-to-back for `duration_s`. Record
// counts are checked against `expected` (one entry per query shape);
// mismatches are counted in `mismatches`.
PhaseResult RunClosedLoop(serve::QueryServer& server,
                          const std::vector<STRange>& queries,
                          const std::vector<std::size_t>& expected,
                          std::size_t clients, double duration_s,
                          std::atomic<std::uint64_t>& mismatches) {
  PhaseResult phase;
  std::atomic<std::size_t> next_query{0};
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> per_client_ms(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& ms = per_client_ms[c];
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t i =
            next_query.fetch_add(1, std::memory_order_relaxed) %
            queries.size();
        const auto t0 = std::chrono::steady_clock::now();
        const auto routed = server.Execute(queries[i]);
        ms.push_back(SecondsSince(t0) * 1000.0);
        if (routed.result.records.size() != expected[i])
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  phase.elapsed_s = SecondsSince(start);
  for (auto& ms : per_client_ms) {
    phase.completed += ms.size();
    phase.latencies_ms.insert(phase.latencies_ms.end(), ms.begin(), ms.end());
  }
  return phase;
}

struct LatencyLegResult {
  std::uint64_t total = 0;
  std::uint64_t misses = 0;  // partial results + deadline errors
  std::vector<double> latencies_ms;

  double MissRatePct() const {
    return total > 0 ? 100.0 * double(misses) / double(total) : 0.0;
  }
};

// Replays every query shape `rounds` times under a deadline with
// graceful degradation on. A query that came back partial (or threw
// DeadlineExceededError from the admission queue) counts as a deadline
// miss; a partial may only undercount its shape's reference result.
LatencyLegResult RunLatencyLeg(serve::QueryServer& server,
                               const std::vector<STRange>& queries,
                               const std::vector<std::size_t>& expected,
                               std::size_t clients, std::size_t rounds,
                               std::atomic<std::uint64_t>& mismatches) {
  LatencyLegResult leg;
  leg.total = queries.size() * rounds;
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::vector<double>> per_client_ms(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& ms = per_client_ms[c];
      for (;;) {
        const std::size_t n = next.fetch_add(1, std::memory_order_relaxed);
        if (n >= leg.total) break;
        const std::size_t i = n % queries.size();
        const auto t0 = std::chrono::steady_clock::now();
        try {
          const auto routed = server.Execute(queries[i]);
          ms.push_back(SecondsSince(t0) * 1000.0);
          if (routed.partial) {
            misses.fetch_add(1, std::memory_order_relaxed);
            if (routed.result.records.size() > expected[i])
              mismatches.fetch_add(1, std::memory_order_relaxed);
          } else if (routed.result.records.size() != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const DeadlineExceededError&) {
          ms.push_back(SecondsSince(t0) * 1000.0);
          misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  leg.misses = misses.load();
  for (auto& ms : per_client_ms)
    leg.latencies_ms.insert(leg.latencies_ms.end(), ms.begin(), ms.end());
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv, 1,
                     {"out", "mode", "records", "shapes", "threads",
                      "clients", "duration-s", "io-ms", "overload-factor",
                      "max-inflight", "cache-mb", "seed", "deadline-ms",
                      "hedge-ms"});
  const std::string out = flags.GetString("out", "BENCH_serving.json");
  const std::string mode = flags.GetString("mode", "all");
  require(mode == "all" || mode == "closed" || mode == "open" ||
              mode == "latency",
          "--mode must be all, closed, open or latency");
  const std::size_t records = std::size_t(flags.GetInt("records", 20000));
  const std::size_t shapes = std::size_t(flags.GetInt("shapes", 64));
  const double duration_s = flags.GetDouble("duration-s", 1.5);
  const double io_ms = flags.GetDouble("io-ms", 5.0);
  const double overload_factor = flags.GetDouble("overload-factor", 4.0);
  const std::size_t max_inflight_overload =
      std::size_t(flags.GetInt("max-inflight", 16));
  const std::uint64_t cache_mb = flags.GetUint64("cache-mb", 64);
  const std::uint64_t seed = flags.GetUint64("seed", 20140623);
  const double deadline_ms = flags.GetDouble("deadline-ms", 45.0);
  const double hedge_ms = flags.GetDouble("hedge-ms", 10.0);
  require(deadline_ms > 0.0, "--deadline-ms must be > 0");
  require(hedge_ms > 0.0, "--hedge-ms must be > 0");
  std::vector<std::size_t> worker_counts;
  for (const double w : tools::SplitDoubles(flags.GetString("threads", "1,8")))
    worker_counts.push_back(std::size_t(w));
  require(!worker_counts.empty(), "--threads needs at least one count");

  // A warm partition cache keeps per-query CPU small relative to the
  // emulated I/O wait, so closed-loop scaling measures the scheduler.
  PartitionCache::Global().Configure(cache_mb << 20);

  Dataset dataset = bench::MakeSample(records);
  const std::size_t num_records = dataset.size();
  const STRange universe = bench::PaperUniverse();
  BlotStore store(Dataset(dataset), universe);
  {
    ThreadPool build_pool(2, "build");
    store.AddReplica({{.spatial_partitions = 16, .temporal_partitions = 8},
                      EncodingScheme::FromName("ROW-SNAPPY")},
                     &build_pool);
    store.AddReplica({{.spatial_partitions = 64, .temporal_partitions = 16},
                      EncodingScheme::FromName("COL-GZIP")},
                     &build_pool);
  }
  // The latency-fault legs build their own store per leg, from the same
  // dataset: routing state (health, latency EWMAs) must start cold and
  // identical in both legs for the hedging comparison to be fair. The
  // replica pair is deliberately near-peer (same partitioning, different
  // encoding): hedging races the next-cheapest *covering* replica, and a
  // backup can only win the race when its cost is comparable — with the
  // stall maps independent per replica name, a stalled primary partition
  // is almost always healthy on the peer.
  const auto build_latency_store = [&dataset, &universe] {
    BlotStore lat_store(Dataset(dataset), universe);
    ThreadPool build_pool(2, "build");
    lat_store.AddReplica(
        {{.spatial_partitions = 16, .temporal_partitions = 8},
         EncodingScheme::FromName("ROW-SNAPPY")},
        &build_pool);
    lat_store.AddReplica(
        {{.spatial_partitions = 16, .temporal_partitions = 8},
         EncodingScheme::FromName("COL-SNAPPY")},
        &build_pool);
    return lat_store;
  };
  const CostModel model{EnvironmentModel::LocalHadoop()};

  // Query shapes: mid-size ranges sampled deterministically, so every
  // phase replays the same pool and counts are comparable across phases.
  Rng rng(seed);
  std::vector<STRange> queries;
  queries.reserve(shapes);
  for (std::size_t i = 0; i < shapes; ++i)
    queries.push_back(SampleQueryInstance(
        {{universe.Width() * 0.08, universe.Height() * 0.08,
          universe.Duration() * 0.15}},
        universe, rng));

  // Single-threaded reference counts (also warms the cache).
  std::vector<std::size_t> expected(queries.size(), 0);
  for (std::size_t i = 0; i < queries.size(); ++i)
    expected[i] = store.Execute(queries[i], model).result.records.size();

  std::printf("blotload: %zu records, %zu query shapes, io %.1f ms\n",
              num_records, queries.size(), io_ms);

  bench::BenchReport report("serving");
  report.Info("dataset_records", std::uint64_t(num_records));
  report.Info("query_shapes", std::uint64_t(queries.size()));
  report.Metric("io_ms", io_ms);
  std::atomic<std::uint64_t> mismatches{0};

  // ---- closed loop: throughput vs request-worker count ----------------
  std::vector<std::pair<std::size_t, double>> qps_by_workers;
  if (mode == "all" || mode == "closed") {
    bench::PrintRule('-', 70);
    std::printf("%-10s %10s %10s %10s %10s %10s\n", "workers", "qps",
                "p50 ms", "p95 ms", "p99 ms", "queries");
    bench::PrintRule('-', 70);
    for (const std::size_t workers : worker_counts) {
      serve::ServerOptions options;
      options.worker_threads = workers;
      options.simulate_io_ms = io_ms;
      // Clients and admission sized so the server is never the client's
      // bottleneck and nothing sheds in this phase.
      const std::size_t clients = std::max<std::size_t>(16, 2 * workers);
      options.max_inflight = clients + workers;
      serve::QueryServer server(store, model, options);
      PhaseResult phase = RunClosedLoop(server, queries, expected, clients,
                                        duration_s, mismatches);
      server.Drain();
      const auto stats = server.stats();
      require(stats.shed == 0, "closed loop must not shed");
      const double p50 = Percentile(phase.latencies_ms, 50);
      const double p95 = Percentile(phase.latencies_ms, 95);
      const double p99 = Percentile(phase.latencies_ms, 99);
      std::printf("%-10zu %10.1f %10.2f %10.2f %10.2f %10llu\n", workers,
                  phase.Qps(), p50, p95, p99,
                  static_cast<unsigned long long>(phase.completed));
      const std::string suffix = "_w" + std::to_string(workers);
      report.Metric("closed_loop_qps" + suffix, phase.Qps());
      report.Metric("closed_loop_p50_ms" + suffix, p50);
      report.Metric("closed_loop_p95_ms" + suffix, p95);
      report.Metric("closed_loop_p99_ms" + suffix, p99);
      qps_by_workers.emplace_back(workers, phase.Qps());
    }
    const auto [min_it, max_it] = std::minmax_element(
        qps_by_workers.begin(), qps_by_workers.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (min_it != max_it && min_it->second > 0) {
      const double speedup = max_it->second / min_it->second;
      std::printf("scaling %zu -> %zu workers: %.2fx\n", min_it->first,
                  max_it->first, speedup);
      // The acceptance ratio the tripwire tracks; keep the stable name
      // for the default 1-vs-8 sweep.
      if (min_it->first == 1 && max_it->first == 8)
        report.Metric("closed_loop_scaling_8v1_speedup", speedup,
                      /*tracked=*/true);
      else
        report.Metric("closed_loop_scaling_speedup", speedup);
    }
  }

  // ---- open loop: offered load beyond capacity must shed, not fail ----
  if (mode == "all" || mode == "open") {
    serve::ServerOptions options;
    options.worker_threads = 8;
    options.simulate_io_ms = io_ms;
    options.max_inflight = max_inflight_overload;
    serve::QueryServer server(store, model, options);
    // Nominal capacity: each worker holds one query for at least io_ms.
    const double capacity_qps =
        double(options.worker_threads) * 1000.0 / std::max(io_ms, 0.1);
    const double offered_qps = overload_factor * capacity_qps;
    const auto interval =
        std::chrono::duration<double>(1.0 / offered_qps);
    std::vector<std::future<BlotStore::RoutedResult>> futures;
    std::vector<std::size_t> admitted_query_of;
    std::uint64_t offered = 0;
    double retry_after_sum = 0.0;
    std::uint64_t retry_after_count = 0;
    const auto start = std::chrono::steady_clock::now();
    auto next_send = start;
    while (SecondsSince(start) < duration_s) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(interval);
      const std::size_t i = offered % queries.size();
      ++offered;
      try {
        futures.push_back(server.Submit(queries[i]));
        admitted_query_of.push_back(i);
      } catch (const serve::OverloadedError& e) {
        retry_after_sum += e.retry_after_ms();
        ++retry_after_count;
      }
    }
    for (std::size_t f = 0; f < futures.size(); ++f) {
      const auto routed = futures[f].get();
      if (routed.result.records.size() != expected[admitted_query_of[f]])
        mismatches.fetch_add(1, std::memory_order_relaxed);
    }
    server.Drain();
    const auto stats = server.stats();
    const double shed_rate_pct =
        stats.submitted > 0
            ? 100.0 * double(stats.shed) / double(stats.submitted)
            : 0.0;
    bench::PrintRule('-', 70);
    std::printf(
        "open loop: offered %.0f qps (%.1fx capacity), admitted %llu, "
        "shed %llu (%.1f%%), mean retry-after %.1f ms\n",
        offered_qps, overload_factor,
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.shed), shed_rate_pct,
        retry_after_count > 0 ? retry_after_sum / double(retry_after_count)
                              : 0.0);
    require(stats.failed == 0, "admitted queries must not fail");
    report.Metric("open_loop_offered_qps", offered_qps);
    report.Metric("open_loop_admitted", double(stats.admitted));
    report.Metric("open_loop_shed", double(stats.shed));
    // Lower is better ("_pct"): under fixed 4x overload the shed rate
    // must stay near its structural 1 - 1/F value; a rise means admitted
    // queries got slower or admission broke.
    report.Metric("overload_shed_rate_pct", shed_rate_pct, /*tracked=*/true);
    report.Metric("open_loop_mean_retry_after_ms",
                  retry_after_count > 0
                      ? retry_after_sum / double(retry_after_count)
                      : 0.0);
    report.Info("overload_factor", std::uint64_t(overload_factor));
    report.Info("overload_max_inflight", std::uint64_t(max_inflight_overload));
  }

  // ---- latency faults: deadlines + hedged reads under pareto stalls ----
  if (mode == "all" || mode == "latency") {
    // Stalls are injected at the partition *read* boundary, which a warm
    // decoded-partition cache never crosses — run this leg uncached.
    PartitionCache::Global().Configure(0);
    // The hedge/deadline counters only tick while the registry is on;
    // both legs pay the same (tiny) profiling overhead, so the ratio
    // between them is unaffected.
    auto& registry = obs::MetricsRegistry::global();
    registry.set_enabled(true);
    obs::Counter& hedge_fired = registry.GetCounter("hedge.fired_total");
    obs::Counter& hedge_wins =
        registry.GetCounter("hedge.backup_wins_total");
    // Rare-but-harsh brownouts: a few percent of the storage units
    // stall, a deterministic few catastrophically (up to 4x the
    // deadline). That shape is what hedging wins against — a stalled
    // primary races a backup replica whose units are healthy with high
    // probability. Keeping stalls rare also keeps the LatencyMap EWMA
    // near the healthy baseline, so the 2x-expected hedge trigger fires
    // on genuine outliers instead of sliding up with a uniformly slow
    // fleet (where a backup would not help anyway).
    FaultPlan plan;
    plan.seed = seed ^ 0x6c6174656e6379ULL;
    plan.probability = 0.04;
    plan.kinds = {FaultKind::kLatency};
    plan.max_fires_per_target = 0;  // a stall persists until repaired
    plan.latency_dist = FaultPlan::LatencyDist::kPareto;
    plan.latency_min = 5.0;
    plan.latency_max = 400.0;

    // Fixed replay (not time-bound) so both legs run the identical
    // query sequence against the identical deterministic stall map.
    const std::size_t rounds = 4;
    const std::size_t lat_clients = 4;
    bench::PrintRule('-', 70);
    std::printf("%-10s %10s %10s %10s %10s %10s\n", "hedging", "queries",
                "miss %", "p50 ms", "p95 ms", "p99 ms");
    bench::PrintRule('-', 70);
    double p99_off = 0.0, p99_on = 0.0;
    const std::uint64_t fired_before = hedge_fired.value();
    const std::uint64_t wins_before = hedge_wins.value();
    for (const bool hedged : {false, true}) {
      // Re-arm per leg: fire/read counters reset, so the second leg sees
      // the same per-target stalls as the first. A fresh store per leg
      // resets the routing feedback (latency EWMAs, brownout penalties)
      // the same way — otherwise the first leg's observations would let
      // the second leg route around every stall it is meant to hedge.
      BlotStore lat_store = build_latency_store();  // before Arm
      FaultInjector::Global().Arm(plan);
      serve::ServerOptions options;
      options.worker_threads = lat_clients;
      options.max_inflight = 2 * lat_clients;
      options.default_deadline_ms = deadline_ms;
      options.allow_partial = true;
      options.hedge_ms = hedged ? hedge_ms : 0.0;
      serve::QueryServer server(lat_store, model, options);
      const LatencyLegResult leg = RunLatencyLeg(
          server, queries, expected, lat_clients, rounds, mismatches);
      server.Drain();
      const double p50 = Percentile(leg.latencies_ms, 50);
      const double p95 = Percentile(leg.latencies_ms, 95);
      const double p99 = Percentile(leg.latencies_ms, 99);
      (hedged ? p99_on : p99_off) = p99;
      std::printf("%-10s %10llu %10.1f %10.2f %10.2f %10.2f\n",
                  hedged ? "on" : "off",
                  static_cast<unsigned long long>(leg.total),
                  leg.MissRatePct(), p50, p95, p99);
      const std::string suffix = hedged ? "_hedged" : "";
      report.Metric("latency_fault_p50_ms" + suffix, p50);
      report.Metric("latency_fault_p99_ms" + suffix, p99);
      if (hedged) {
        report.Metric("deadline_miss_rate_hedged_pct", leg.MissRatePct());
      } else {
        // Lower is better ("_pct"): how often the unhedged store blows a
        // deadline under the fixed pareto stall plan.
        report.Metric("deadline_miss_rate_pct", leg.MissRatePct(),
                      /*tracked=*/true);
      }
    }
    FaultInjector::Global().Disarm();
    const std::uint64_t fired = hedge_fired.value() - fired_before;
    const std::uint64_t wins = hedge_wins.value() - wins_before;
    // Higher is better: p99 ratio of hedging off over on at equal
    // correctness — the tail latency the backup attempt buys back.
    const double improvement = p99_on > 0.0 ? p99_off / p99_on : 1.0;
    std::printf("hedge p99 improvement: %.2fx (deadline %.0f ms, hedge "
                "after %.0f ms; %llu hedges fired, %llu backup wins)\n",
                improvement, deadline_ms, hedge_ms,
                static_cast<unsigned long long>(fired),
                static_cast<unsigned long long>(wins));
    report.Metric("hedge_fired", double(fired));
    report.Metric("hedge_backup_wins", double(wins));
    report.Metric("hedge_p99_improvement", improvement, /*tracked=*/true);
    report.Metric("latency_fault_deadline_ms", deadline_ms);
    report.Metric("latency_fault_hedge_ms", hedge_ms);
  }

  const std::uint64_t bad = mismatches.load();
  report.Metric("result_mismatches", double(bad));
  if (!report.Write(out)) return 1;
  std::printf("wrote %s\n", out.c_str());
  std::printf("admitted-result consistency: %s\n", bad == 0 ? "YES" : "NO");
  return bad == 0 ? 0 : 1;
}
