// blotfuzz — long-running differential soak for the diverse-replica
// store.
//
// Each round is one seeded iteration of the differential harness
// (src/testing/differential.h): an adversarial dataset, a seed-chosen
// replica set, and every execution path — fused scan, naive scan, cache
// cold/warm, routed, batched, failover-degraded, self-healed — checked
// against the brute-force oracle, plus the metamorphic relations.
//
// On any mismatch it prints a one-line repro command:
//
//   MISMATCH check=replica-execute[KD4xT4/ROW-GZIP] iter=17 seed=1234 ...
//     repro: blotfuzz --seed=1234 --rounds=1 --queries=8 --replicas=3 ...
//
// Running that command replays exactly the failing iteration (round 0
// under base seed S runs with seed S itself).
//
// `--inject-faults=SPEC` arms the deterministic fault injector each
// round (seed derived from the round's seed); with failover on, every
// routed query must still match the oracle (the paper's chaos-
// equivalence claim). Add `--no-repair` to disable failover and repair:
// injected faults then surface as mismatches, which is how the harness
// proves its own detection and repro machinery works end to end.
//
// Exit codes: 0 clean, 1 mismatches found, 2 usage error, 3 internal
// failure (the harness itself broke — NOT a differential mismatch).
#include <cstdio>
#include <iostream>
#include <string>

#include "core/fault_injection.h"
#include "obs/event_log.h"
#include "testing/differential.h"
#include "tools/flags.h"

namespace blot::tools {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: blotfuzz [--seed S] [--rounds N] [--queries N] [--replicas N]\n"
      "                [--cache-bytes N] [--max-records N]\n"
      "                [--inject-faults SPEC] [--no-repair]\n"
      "                [--hedge-ms MS] [--deadline-ms MS] [--quiet]\n"
      "                [--event-log FILE]\n"
      "\n"
      "  --seed S           base seed (default 1); round 0 runs seed S\n"
      "                     itself, so a printed repro line replays exactly\n"
      "  --rounds N         seeded iterations to run (default 100)\n"
      "  --queries N        queries per round (default 8)\n"
      "  --replicas N       replicas per round (default 3)\n"
      "  --cache-bytes N    decoded-partition cache budget for the cache-on\n"
      "                     checks (default 4 MiB; 0 skips them)\n"
      "  --max-records N    dataset size cap per round (default 384)\n"
      "  --inject-faults S  arm the deterministic fault injector each round\n"
      "                     (grammar: docs/robustness.md); store-level\n"
      "                     checks only\n"
      "  --no-repair        disable failover and repair: injected faults\n"
      "                     surface as reproducible mismatches\n"
      "  --hedge-ms MS      with faults armed: also run every query hedged\n"
      "                     (backup attempt races a slow primary); the\n"
      "                     winning answer must stay bit-identical to the\n"
      "                     oracle\n"
      "  --deadline-ms MS   with faults armed: also run every query under\n"
      "                     this deadline with partial results allowed;\n"
      "                     partial coverage must match the oracle on the\n"
      "                     served partitions exactly\n"
      "  --quiet            only print mismatches and the final summary\n"
      "  --event-log FILE   append structured JSONL events (soak.start,\n"
      "                     soak.mismatch with seed/round/repro, quarantine/\n"
      "                     failover/repair, soak.summary); view with\n"
      "                     blotmon\n");
  return 2;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv, 1,
                    {"seed", "rounds", "queries", "replicas", "cache-bytes",
                     "max-records", "inject-faults", "event-log", "hedge-ms",
                     "deadline-ms"},
                    {"no-repair", "quiet"});

  blot::testing::DifferentialOptions options;
  // Repro seeds come from IterationSeed() and span the full uint64
  // range, so --seed must not go through a signed parse.
  options.seed = flags.GetUint64("seed", 1);
  options.iterations = static_cast<std::size_t>(flags.GetInt("rounds", 100));
  options.queries_per_iteration =
      static_cast<std::size_t>(flags.GetInt("queries", 8));
  options.replicas_per_iteration =
      static_cast<std::size_t>(flags.GetInt("replicas", 3));
  options.cache_budget_bytes =
      flags.GetUint64("cache-bytes", std::uint64_t{4} << 20);
  options.profile.max_records =
      static_cast<std::size_t>(flags.GetUint64("max-records", 384));
  if (flags.Has("inject-faults"))
    options.fault_plan = ParseFaultSpec(flags.GetString("inject-faults"));
  options.failover_enabled = !flags.Has("no-repair");
  options.hedge_ms = flags.GetDouble("hedge-ms", 0.0);
  options.deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  if (options.hedge_ms < 0.0 || options.deadline_ms < 0.0)
    throw blot::InvalidArgument(
        "blotfuzz: --hedge-ms and --deadline-ms must be >= 0");
  if ((options.hedge_ms > 0.0 || options.deadline_ms > 0.0) &&
      !options.fault_plan.has_value())
    throw blot::InvalidArgument(
        "blotfuzz: --hedge-ms/--deadline-ms need --inject-faults (the "
        "hedged and deadline legs only run with faults armed)");

  const bool quiet = flags.Has("quiet");
  if (!quiet)
    std::cout << "blotfuzz: seed=" << options.seed
              << " rounds=" << options.iterations
              << " queries/round=" << options.queries_per_iteration
              << " replicas/round=" << options.replicas_per_iteration
              << (options.fault_plan.has_value() ? " (faults armed)" : "")
              << (options.hedge_ms > 0.0 ? " (hedged leg)" : "")
              << (options.deadline_ms > 0.0 ? " (deadline leg)" : "")
              << (options.failover_enabled ? "" : " (failover disabled)")
              << std::endl;

  // --event-log FILE: a structured JSONL mirror of the run — soak.start /
  // soak.summary bracket the store's own quarantine/failover/repair
  // events and every soak.mismatch (with its repro command), so blotmon
  // can post-mortem a soak as one incident timeline.
  auto& elog = blot::obs::EventLog::Global();
  if (flags.Has("event-log")) {
    elog.OpenSink(flags.GetString("event-log"));
    elog.Info("soak.start", "blotfuzz soak starting",
              {blot::obs::Field("seed", options.seed),
               blot::obs::Field("rounds", options.iterations),
               blot::obs::Field("queries_per_round",
                                options.queries_per_iteration),
               blot::obs::Field("replicas_per_round",
                                options.replicas_per_iteration),
               blot::obs::Field("faults_armed",
                                options.fault_plan.has_value() ? "true"
                                                               : "false"),
               blot::obs::Field("failover_enabled",
                                options.failover_enabled ? "true"
                                                         : "false")});
  }

  const blot::testing::DifferentialReport report =
      blot::testing::RunDifferential(options, &std::cout);

  std::cout << "blotfuzz: " << report.iterations << " rounds, "
            << report.queries_checked << " queries, " << report.checks_run
            << " checks, " << report.mismatches.size() << " mismatches ("
            << report.encodings_covered.size() << " encodings, "
            << report.partitionings_covered.size() << " partitionings)"
            << std::endl;
  if (elog.has_sink()) {
    elog.Emit(report.ok() ? blot::obs::EventSeverity::kInfo
                          : blot::obs::EventSeverity::kError,
              "soak.summary", "blotfuzz soak finished",
              {blot::obs::Field("rounds", report.iterations),
               blot::obs::Field("queries", report.queries_checked),
               blot::obs::Field("checks", report.checks_run),
               blot::obs::Field("mismatches", report.mismatches.size())});
    elog.CloseSink();
  }
  return report.ok() ? 0 : 1;
}

}  // namespace
}  // namespace blot::tools

int main(int argc, char** argv) {
  try {
    return blot::tools::Run(argc, argv);
  } catch (const blot::InvalidArgument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return blot::tools::Usage();
  } catch (const std::exception& e) {
    // Exit 1 is reserved for genuine differential mismatches; an
    // unexpected Error (or any stray std::exception) is the harness
    // itself failing, which CI must be able to tell apart.
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
}
