// blotmon — viewer for the BLOT store's telemetry files.
//
// Reads the JSONL files the other tools write — structured event logs
// (blotctl --event-log, blotfuzz --event-log) and metrics snapshot
// time series (blotctl stats --snapshots-out) — and renders them for
// humans. Both kinds can share one file; every line is classified by
// its schema.
//
//   blotmon FILE             pretty-print the timeline, oldest first
//   blotmon FILE --follow    keep tailing the file as it grows
//   blotmon FILE --summary   post-mortem: severity/category counts, an
//                            incident timeline of the notable events,
//                            and — for snapshot lines — the
//                            reconstructed registry with a per-stage
//                            latency table (p50/p95/p99)
//
// The summary's quantiles are computed with the same interpolation the
// in-process registry uses (obs::HistogramPercentile over the
// reconstructed bucket counts), so they match a `--metrics-out` JSON
// snapshot of the same run exactly.
//
// Exit codes: 0 ok, 1 error (unreadable file / malformed line), 2 usage.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "tools/flags.h"
#include "util/error.h"
#include "util/json.h"

namespace blot::tools {
namespace {

using util::JsonValue;

int Usage() {
  std::fprintf(
      stderr,
      "usage: blotmon FILE [--follow] [--summary]\n"
      "               [--min-severity debug|info|warn|error]\n"
      "               [--category PREFIX]\n"
      "\n"
      "  FILE               JSONL telemetry: an event log (blotctl/blotfuzz\n"
      "                     --event-log) and/or metrics snapshots (blotctl\n"
      "                     stats --snapshots-out); kinds may share a file\n"
      "  --follow           after printing, keep tailing FILE as it grows\n"
      "  --summary          aggregate instead of streaming: event counts,\n"
      "                     incident timeline, per-stage latency quantiles\n"
      "  --min-severity L   drop events below severity L (default: debug\n"
      "                     when streaming, info in --summary's timeline)\n"
      "  --category P       only show events whose category starts with P\n");
  return 2;
}

int SeverityRank(const std::string& severity) {
  if (severity == "debug") return 0;
  if (severity == "info") return 1;
  if (severity == "warn") return 2;
  if (severity == "error") return 3;
  return 1;
}

// One parsed event line, kept for the --summary timeline.
struct EventLine {
  std::uint64_t seq = 0;
  std::uint64_t wall_ms = 0;
  std::string severity;
  std::string category;
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;
};

// Reconstructed state of one histogram across snapshot lines: bounds
// travel on first appearance, dcounts/dsum accumulate.
struct HistogramState {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow)
  std::uint64_t count = 0;
  double sum = 0;
};

// Metric identity: name plus rendered labels, e.g. `query.stage_ms{stage=decode}`.
std::string MetricKey(const std::string& name, const JsonValue& labels) {
  std::string key = name;
  const auto& members = labels.AsObject();
  if (members.empty()) return key;
  key += "{";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i > 0) key += ",";
    key += members[i].first + "=" + members[i].second.AsString();
  }
  return key + "}";
}

struct Monitor {
  bool summary = false;
  int min_severity = 0;
  std::string category_prefix;

  // Streaming state.
  bool have_t0 = false;
  std::uint64_t t0_wall_ms = 0;

  // Summary state.
  std::vector<EventLine> events;
  std::map<std::string, std::size_t> events_by_category;
  std::size_t events_by_severity[4] = {0, 0, 0, 0};
  std::size_t snapshot_lines = 0;
  std::uint64_t first_snapshot_wall_ms = 0;
  std::uint64_t last_snapshot_wall_ms = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramState> histograms;
  std::size_t malformed_lines = 0;

  double RelativeSeconds(std::uint64_t wall_ms) {
    if (!have_t0) {
      have_t0 = true;
      t0_wall_ms = wall_ms;
    }
    return double(wall_ms - t0_wall_ms) * 1e-3;
  }

  static std::string RenderFields(
      const std::vector<std::pair<std::string, std::string>>& fields) {
    if (fields.empty()) return "";
    std::string out = " (";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += fields[i].first + "=" + fields[i].second;
    }
    return out + ")";
  }

  void PrintEvent(const EventLine& e) {
    std::printf("%+10.3fs  %-5s  %-24s %s%s\n", RelativeSeconds(e.wall_ms),
                e.severity.c_str(), e.category.c_str(), e.message.c_str(),
                RenderFields(e.fields).c_str());
  }

  void ConsumeEvent(const JsonValue& v) {
    EventLine e;
    e.seq = v.Uint64Or("seq", 0);
    e.wall_ms = v.Uint64Or("wall_ms", 0);
    e.severity = v.StringOr("severity", "info");
    e.category = v.StringOr("category", "");
    e.message = v.StringOr("message", "");
    if (const JsonValue* fields = v.Find("fields"))
      for (const auto& [key, value] : fields->AsObject())
        e.fields.emplace_back(key, value.AsString());

    if (!category_prefix.empty() &&
        e.category.rfind(category_prefix, 0) != 0)
      return;
    const int rank = SeverityRank(e.severity);
    if (summary) {
      ++events_by_severity[rank];
      ++events_by_category[e.category];
      if (rank >= min_severity) events.push_back(std::move(e));
    } else if (rank >= min_severity) {
      PrintEvent(e);
    }
  }

  void ConsumeSnapshot(const JsonValue& v) {
    const std::uint64_t wall_ms = v.Uint64Or("wall_ms", 0);
    if (snapshot_lines == 0) first_snapshot_wall_ms = wall_ms;
    last_snapshot_wall_ms = wall_ms;
    ++snapshot_lines;

    if (!summary) {
      std::size_t changed = 0;
      if (const JsonValue* counters_json = v.Find("counters"))
        changed += counters_json->AsArray().size();
      if (const JsonValue* hists_json = v.Find("histograms"))
        changed += hists_json->AsArray().size();
      std::printf("%+10.3fs  snap   seq=%llu (%zu metrics changed)\n",
                  RelativeSeconds(wall_ms),
                  static_cast<unsigned long long>(v.Uint64Or("seq", 0)),
                  changed);
      return;
    }

    // Reconstruction is uniform cumulative summation: every delta —
    // including a metric's first appearance — adds onto zero-initialized
    // state, mirroring the writer's encoding (obs/snapshot.cc).
    if (const JsonValue* counters_json = v.Find("counters"))
      for (const JsonValue& c : counters_json->AsArray())
        counters[MetricKey(c.At("name").AsString(), c.At("labels"))] +=
            c.Uint64Or("delta", 0);
    if (const JsonValue* gauges_json = v.Find("gauges"))
      for (const JsonValue& g : gauges_json->AsArray())
        gauges[MetricKey(g.At("name").AsString(), g.At("labels"))] =
            g.DoubleOr("value", 0);
    if (const JsonValue* hists_json = v.Find("histograms"))
      for (const JsonValue& h : hists_json->AsArray()) {
        HistogramState& state =
            histograms[MetricKey(h.At("name").AsString(), h.At("labels"))];
        if (const JsonValue* bounds = h.Find("bounds")) {
          state.bounds.clear();
          for (const JsonValue& b : bounds->AsArray())
            state.bounds.push_back(b.AsDouble());
          state.counts.assign(state.bounds.size() + 1, 0);
        }
        const auto& dcounts = h.At("dcounts").AsArray();
        if (state.counts.size() < dcounts.size())
          state.counts.resize(dcounts.size(), 0);
        for (std::size_t i = 0; i < dcounts.size(); ++i)
          state.counts[i] += dcounts[i].AsUint64();
        state.count += h.Uint64Or("dcount", 0);
        state.sum += h.DoubleOr("dsum", 0);
      }
  }

  void ConsumeLine(const std::string& line) {
    if (line.empty()) return;
    JsonValue v;
    try {
      v = JsonValue::Parse(line);
    } catch (const Error&) {
      ++malformed_lines;
      return;
    }
    if (!v.is_object()) {
      ++malformed_lines;
      return;
    }
    if (v.StringOr("schema", "") == "blot.snapshot.v1")
      ConsumeSnapshot(v);
    else if (v.Find("severity") != nullptr && v.Find("category") != nullptr)
      ConsumeEvent(v);
    else
      ++malformed_lines;
  }

  void PrintHistogramRow(const std::string& key,
                         const HistogramState& state) {
    const double p50 =
        obs::HistogramPercentile(state.bounds, state.counts, state.count, 50);
    const double p95 =
        obs::HistogramPercentile(state.bounds, state.counts, state.count, 95);
    const double p99 =
        obs::HistogramPercentile(state.bounds, state.counts, state.count, 99);
    std::printf("  %-38s %10llu  %12s  %12s  %12s\n", key.c_str(),
                static_cast<unsigned long long>(state.count),
                obs::FormatJsonNumber(p50).c_str(),
                obs::FormatJsonNumber(p95).c_str(),
                obs::FormatJsonNumber(p99).c_str());
  }

  void PrintSummary() {
    if (!events.empty() || events_by_severity[0] + events_by_severity[1] +
                                   events_by_severity[2] +
                                   events_by_severity[3] >
                               0) {
      std::printf("events: %zu (%zu error, %zu warn, %zu info, %zu debug)\n",
                  events_by_severity[0] + events_by_severity[1] +
                      events_by_severity[2] + events_by_severity[3],
                  events_by_severity[3], events_by_severity[2],
                  events_by_severity[1], events_by_severity[0]);
      std::printf("by category:\n");
      for (const auto& [category, count] : events_by_category)
        std::printf("  %-32s %zu\n", category.c_str(), count);
      std::printf("incident timeline:\n");
      for (const EventLine& e : events) PrintEvent(e);
    }

    if (snapshot_lines > 0) {
      std::printf("snapshots: %zu over %.3fs\n", snapshot_lines,
                  double(last_snapshot_wall_ms - first_snapshot_wall_ms) *
                      1e-3);

      // The headline table: per-stage query latency, quantiles computed
      // exactly as the in-process registry computes them.
      bool stage_header = false;
      for (const auto& [key, state] : histograms) {
        if (key.rfind("query.stage_ms", 0) != 0) continue;
        if (!stage_header) {
          std::printf("per-stage latency (query.stage_ms):\n");
          std::printf("  %-38s %10s  %12s  %12s  %12s\n", "stage", "count",
                      "p50", "p95", "p99");
          stage_header = true;
        }
        PrintHistogramRow(key, state);
      }

      bool other_header = false;
      for (const auto& [key, state] : histograms) {
        if (key.rfind("query.stage_ms", 0) == 0) continue;
        if (!other_header) {
          std::printf("other histograms:\n");
          std::printf("  %-38s %10s  %12s  %12s  %12s\n", "histogram",
                      "count", "p50", "p95", "p99");
          other_header = true;
        }
        PrintHistogramRow(key, state);
      }

      if (!counters.empty()) {
        std::printf("counters (final):\n");
        for (const auto& [key, value] : counters)
          std::printf("  %-38s %llu\n", key.c_str(),
                      static_cast<unsigned long long>(value));
      }
      if (!gauges.empty()) {
        std::printf("gauges (last):\n");
        for (const auto& [key, value] : gauges)
          std::printf("  %-38s %s\n", key.c_str(),
                      obs::FormatJsonNumber(value).c_str());
      }
    }

    if (malformed_lines > 0)
      std::fprintf(stderr, "warning: %zu malformed line(s) skipped\n",
                   malformed_lines);
  }
};

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string path = argv[1];
  if (path == "help" || path == "--help") return Usage();
  const Flags flags(argc, argv, 2, {"min-severity", "category"},
                    {"follow", "summary"});

  Monitor monitor;
  monitor.summary = flags.Has("summary");
  monitor.category_prefix = flags.GetString("category", "");
  // Streaming shows everything by default; the summary timeline hides
  // debug noise (the counts still include it).
  monitor.min_severity = SeverityRank(
      flags.GetString("min-severity", monitor.summary ? "info" : "debug"));
  const bool follow = flags.Has("follow");
  require(!(follow && monitor.summary),
          "--follow and --summary are mutually exclusive");

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "blotmon: cannot open %s\n", path.c_str());
    return 1;
  }

  std::string buffer;
  std::vector<char> chunk(1 << 16);
  while (true) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize n = in.gcount();
    if (n > 0) {
      buffer.append(chunk.data(), static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = buffer.find('\n', start);
           nl != std::string::npos; nl = buffer.find('\n', start)) {
        monitor.ConsumeLine(buffer.substr(start, nl - start));
        start = nl + 1;
      }
      buffer.erase(0, start);
    } else {
      if (!follow) break;
      // Tail mode: the writer appends; clear EOF and poll.
      in.clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }
  // A final unterminated line is still a complete JSON document when the
  // writer finished without a trailing newline.
  if (!buffer.empty()) monitor.ConsumeLine(buffer);

  if (monitor.summary) monitor.PrintSummary();
  if (!monitor.summary && monitor.malformed_lines > 0)
    std::fprintf(stderr, "warning: %zu malformed line(s) skipped\n",
                 monitor.malformed_lines);
  return 0;
}

}  // namespace
}  // namespace blot::tools

int main(int argc, char** argv) {
  try {
    return blot::tools::Run(argc, argv);
  } catch (const blot::InvalidArgument& e) {
    std::fprintf(stderr, "invalid argument: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
