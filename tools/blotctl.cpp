// blotctl — command-line front end for the BLOT diverse-replica store.
//
// Commands:
//   generate    synthesize a taxi-fleet dataset (CSV or binary)
//   build       build a replica from a dataset and persist it on disk
//   info        describe a persisted replica
//   query       range query against a persisted replica
//   aggregate   range statistics against a persisted replica
//   trajectory  one object's trajectory over a time window
//   recover     rebuild a damaged replica from a healthy one
//   store-build persist a multi-replica store (dataset + replicas)
//   store-query routed query against a persisted store
//   advise      recommend a diverse replica set for a workload/budget
//   stats       probe a persisted store and emit a metrics snapshot
//
// Observability: `--trace` on query/store-query prints the span tree of
// the execution; `--metrics-out FILE` on the heavier commands writes a
// JSON metrics snapshot when the command finishes (docs/observability.md).
//
// Run `blotctl help` (or any command with missing flags) for usage.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "blot/aggregate.h"
#include "blot/segment_store.h"
#include "blot/trajectory.h"
#include "core/advisor.h"
#include "core/fault_injection.h"
#include "core/partition_cache.h"
#include "core/store.h"
#include "gen/taxi_generator.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "tools/flags.h"
#include "util/stats.h"

namespace blot::tools {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: blotctl <command> [--flag value ...]\n"
      "\n"
      "  generate   --out FILE [--taxis N] [--samples N] [--seed S]\n"
      "             [--format csv|bin]\n"
      "  build      --data FILE --out DIR [--scheme KD64xT16/COL-GZIP]\n"
      "             [--hybrid 1]\n"
      "  info       --dir DIR\n"
      "  query      --dir DIR --range x0,x1,y0,y1,t0,t1 [--limit N]\n"
      "             [--trace] [--cache-mb N]\n"
      "  aggregate  --dir DIR --range x0,x1,y0,y1,t0,t1\n"
      "  trajectory --dir DIR --oid N [--from T] [--to T] [--limit N]\n"
      "  recover    --from DIR --to DIR\n"
      "  store-build --data FILE --out DIR [--schemes A;B;...]\n"
      "  store-query --dir DIR --range x0,x1,y0,y1,t0,t1 [--env s3|hadoop]\n"
      "             [--trace] [--profile] [--cache-mb N]\n"
      "             [--scan-parallelism N]\n"
      "             [--concurrency N] [--repeat K]\n"
      "             [--deadline-ms D] [--allow-partial] [--hedge-ms H]\n"
      "  advise     --data FILE [--records N] [--budget-gb G]\n"
      "             [--env s3|hadoop] [--algorithm greedy|mip]\n"
      "  stats      --dir DIR [--queries N] [--env s3|hadoop] [--seed S]\n"
      "             [--format json|prom] [--out FILE] [--cache-mb N]\n"
      "             [--snapshots-out FILE] [--snapshot-interval-ms N]\n"
      "\n"
      "  build, query, recover, store-build, store-query and advise also\n"
      "  accept --metrics-out FILE (JSON metrics snapshot on completion).\n"
      "  --cache-mb N enables the decoded-partition cache with an N MiB\n"
      "  budget (default 0 = disabled; docs/performance.md).\n"
      "  query, store-query and stats accept --inject-faults SPEC to arm\n"
      "  the deterministic fault injector on the read path, e.g.\n"
      "  \"seed=7;p=0.5;kinds=bitflip,readerror\" (docs/robustness.md).\n"
      "  query, store-query and stats accept --event-log FILE to append\n"
      "  structured JSONL events (quarantine/failover/repair/...); view\n"
      "  them with blotmon. store-query --profile prints the per-query\n"
      "  stage profile (single-threaded so stage times sum to the total).\n"
      "  store-query --repeat K [--concurrency N] replays the query K\n"
      "  times over N serving-layer workers and reports p50/p95.\n"
      "  stats --snapshots-out FILE [--snapshot-interval-ms N] samples the\n"
      "  registry on a background thread and writes snapshot JSONL.\n"
      "  store-query --deadline-ms D bounds the query's wall time;\n"
      "  --allow-partial serves what was found (with a coverage report)\n"
      "  when the deadline expires or partitions are lost; --hedge-ms H\n"
      "  races a backup replica when the primary stalls past H ms\n"
      "  (docs/robustness.md).\n"
      "\n"
      "exit codes: 0 ok, 1 error, 2 usage/invalid argument,\n"
      "            3 corrupt data, 4 query failed (no healthy copy),\n"
      "            5 partial result served (--allow-partial),\n"
      "            6 deadline exceeded (--deadline-ms)\n");
  return 2;
}

// --metrics-out FILE: switch the global registry on before the command
// body runs, and dump the JSON snapshot when it is done.
void EnableMetricsIfRequested(const Flags& flags) {
  if (flags.Has("metrics-out"))
    obs::MetricsRegistry::global().set_enabled(true);
}

void WriteMetricsIfRequested(const Flags& flags) {
  if (!flags.Has("metrics-out")) return;
  const std::string path = flags.GetString("metrics-out");
  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "cannot open metrics output: " + path);
  out << obs::MetricsRegistry::global().Snapshot().ToJson();
}

// --event-log FILE: append structured events to FILE for the duration of
// the command (blotmon pretty-prints the result).
void OpenEventLogIfRequested(const Flags& flags) {
  if (flags.Has("event-log"))
    obs::EventLog::Global().OpenSink(flags.GetString("event-log"));
}

void CloseEventLogIfOpen() {
  auto& log = obs::EventLog::Global();
  if (log.has_sink()) log.CloseSink();
}

// --inject-faults SPEC: arm the global deterministic fault injector for
// this command (grammar in ParseFaultSpec / docs/robustness.md).
void ArmFaultsIfRequested(const Flags& flags) {
  if (flags.Has("inject-faults"))
    FaultInjector::Global().Arm(
        ParseFaultSpec(flags.GetString("inject-faults")));
}

// One-line injector summary after a command that armed it.
void PrintFaultSummaryIfArmed(const Flags& flags) {
  if (!flags.Has("inject-faults")) return;
  const FaultInjector::Stats s = FaultInjector::Global().stats();
  std::fprintf(stderr,
               "faults: %llu fired on %llu targets (%llu corruptions, "
               "%llu read errors, %llu latency spikes)\n",
               static_cast<unsigned long long>(s.fired_total),
               static_cast<unsigned long long>(s.targets_hit),
               static_cast<unsigned long long>(s.bit_flips + s.truncations +
                                               s.torn_reads),
               static_cast<unsigned long long>(s.read_errors),
               static_cast<unsigned long long>(s.latency_spikes));
  FaultInjector::Global().Disarm();
}

// --cache-mb N: give the decoded-partition cache an N MiB budget for
// this command (0, the default, leaves it disabled).
void ConfigureCacheIfRequested(const Flags& flags) {
  const std::int64_t cache_mb = flags.GetInt("cache-mb", 0);
  require(cache_mb >= 0, "--cache-mb must be >= 0");
  if (cache_mb > 0)
    PartitionCache::Global().Configure(
        static_cast<std::uint64_t>(cache_mb) << 20);
}

// One-line cache summary after a command that may have used it.
void PrintCacheSummaryIfEnabled() {
  PartitionCache& cache = PartitionCache::Global();
  if (!cache.enabled()) return;
  const PartitionCache::Stats s = cache.stats();
  std::printf("cache: %llu hits / %llu misses (%.1f%% hit ratio), "
              "%.2f MiB resident, %llu evictions\n",
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              100.0 * s.HitRatio(), double(s.bytes) / (1 << 20),
              static_cast<unsigned long long>(s.evictions));
}

Dataset LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open dataset: " + path);
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".csv")
    return Dataset::ReadCsv(in);
  return Dataset::ReadBinary(in);
}

// Parses "KD64xT16/COL-GZIP" (optionally "GRID..." / "+HYBRID").
ReplicaConfig ParseReplicaConfig(std::string name, bool hybrid) {
  ReplicaConfig config;
  if (name.size() > 7 && name.substr(name.size() - 7) == "+HYBRID") {
    hybrid = true;
    name = name.substr(0, name.size() - 7);
  }
  const std::size_t slash = name.find('/');
  require(slash != std::string::npos,
          "scheme must look like KD64xT16/COL-GZIP: " + name);
  const std::string part = name.substr(0, slash);
  config.encoding = EncodingScheme::FromName(name.substr(slash + 1));
  std::size_t digits = 0;
  if (part.rfind("KD", 0) == 0) {
    config.partitioning.method = SpatialMethod::kKdTree;
    digits = 2;
  } else if (part.rfind("GRID", 0) == 0) {
    config.partitioning.method = SpatialMethod::kGrid;
    digits = 4;
  } else {
    throw InvalidArgument("partitioning must start with KD or GRID: " + part);
  }
  const std::size_t x = part.find("xT", digits);
  require(x != std::string::npos, "partitioning must contain xT: " + part);
  config.partitioning.spatial_partitions =
      static_cast<std::size_t>(std::stoull(part.substr(digits, x - digits)));
  config.partitioning.temporal_partitions =
      static_cast<std::size_t>(std::stoull(part.substr(x + 2)));
  if (hybrid) config.policy = EncodingPolicy::kBestCodecPerPartition;
  return config;
}

STRange ParseRange(const std::string& csv) {
  const std::vector<double> v = SplitDoubles(csv);
  require(v.size() == 6, "range needs 6 numbers: x0,x1,y0,y1,t0,t1");
  return STRange::FromBounds(v[0], v[1], v[2], v[3], v[4], v[5]);
}

int CmdGenerate(const Flags& flags) {
  TaxiFleetConfig config;
  config.num_taxis = static_cast<std::size_t>(flags.GetInt("taxis", 100));
  config.samples_per_taxi =
      static_cast<std::size_t>(flags.GetInt("samples", 1000));
  config.seed = flags.GetUint64("seed", 20071101);
  const std::string out = flags.GetString("out");
  const std::string format = flags.GetString("format", "bin");
  const Dataset dataset = GenerateTaxiFleet(config);
  std::ofstream file(out, std::ios::binary | std::ios::trunc);
  require(file.good(), "cannot open output: " + out);
  if (format == "csv") {
    dataset.WriteCsv(file);
  } else {
    require(format == "bin", "format must be csv or bin");
    dataset.WriteBinary(file);
  }
  std::printf("wrote %zu records to %s (%s)\n", dataset.size(), out.c_str(),
              format.c_str());
  return 0;
}

int CmdBuild(const Flags& flags) {
  EnableMetricsIfRequested(flags);
  const Dataset dataset = LoadDataset(flags.GetString("data"));
  const ReplicaConfig config = ParseReplicaConfig(
      flags.GetString("scheme", "KD64xT16/COL-GZIP"),
      flags.GetInt("hybrid", 0) != 0);
  ThreadPool pool(4);
  const Replica replica =
      Replica::Build(dataset, config, dataset.BoundingBox(), &pool);
  const std::string dir = flags.GetString("out");
  SegmentStore::Save(replica, dir);
  std::printf("built %s: %zu partitions, %llu records, %.2f MiB -> %s\n",
              config.Name().c_str(), replica.NumPartitions(),
              static_cast<unsigned long long>(replica.NumRecords()),
              double(replica.StorageBytes()) / (1 << 20), dir.c_str());
  WriteMetricsIfRequested(flags);
  return 0;
}

int CmdInfo(const Flags& flags) {
  const std::string dir = flags.GetString("dir");
  const Replica replica = SegmentStore::Load(dir);
  std::printf("replica:    %s\n", replica.config().Name().c_str());
  std::printf("records:    %llu\n",
              static_cast<unsigned long long>(replica.NumRecords()));
  std::printf("partitions: %zu\n", replica.NumPartitions());
  std::printf("storage:    %.2f MiB (%.2f MiB on disk)\n",
              double(replica.StorageBytes()) / (1 << 20),
              double(SegmentStore::DiskBytes(dir)) / (1 << 20));
  std::printf("universe:   %s\n", replica.universe().ToString().c_str());
  return 0;
}

int CmdQuery(const Flags& flags) {
  EnableMetricsIfRequested(flags);
  ConfigureCacheIfRequested(flags);
  ArmFaultsIfRequested(flags);
  OpenEventLogIfRequested(flags);
  obs::TraceSpan root("query");
  obs::TraceSpan& load_span = root.AddChild("load");
  const std::uint64_t root_start_ns = obs::MonotonicNanos();

  Replica replica = [&] {
    obs::SpanTimer timer(&load_span);
    return SegmentStore::Load(flags.GetString("dir"));
  }();
  load_span.AddAttribute("replica", replica.config().Name());
  load_span.AddAttribute("partitions",
                         std::uint64_t{replica.NumPartitions()});

  const STRange range = ParseRange(flags.GetString("range"));
  const std::int64_t limit = flags.GetInt("limit", 20);
  ThreadPool pool(4);
  obs::TraceSpan& execute_span = root.AddChild("execute");
  const QueryResult result = [&] {
    obs::SpanTimer timer(&execute_span);
    return replica.Execute(range, &pool);
  }();
  execute_span.AddAttribute(
      "partitions_scanned", std::uint64_t{result.stats.partitions_scanned});
  execute_span.AddAttribute("records_scanned",
                            result.stats.records_scanned);
  execute_span.AddAttribute("bytes_read", result.stats.bytes_read);
  root.set_duration_ms(double(obs::MonotonicNanos() - root_start_ns) *
                       1e-6);
  if (flags.Has("trace")) std::fputs(root.Render().c_str(), stdout);

  std::printf("%zu records (scanned %llu records in %zu partitions)\n",
              result.records.size(),
              static_cast<unsigned long long>(result.stats.records_scanned),
              result.stats.partitions_scanned);
  std::int64_t shown = 0;
  for (const Record& r : result.records) {
    if (shown++ >= limit) {
      std::printf("... (%zu more)\n",
                  result.records.size() - static_cast<std::size_t>(limit));
      break;
    }
    std::printf("oid=%u t=%lld lon=%.6f lat=%.6f speed=%.1f status=%u\n",
                r.oid, static_cast<long long>(r.time), r.x, r.y,
                static_cast<double>(r.speed), r.status);
  }
  PrintCacheSummaryIfEnabled();
  PrintFaultSummaryIfArmed(flags);
  WriteMetricsIfRequested(flags);
  CloseEventLogIfOpen();
  return 0;
}

int CmdAggregate(const Flags& flags) {
  const Replica replica = SegmentStore::Load(flags.GetString("dir"));
  const STRange range = ParseRange(flags.GetString("range"));
  ThreadPool pool(4);
  const RangeStatistics s = AggregateRange(replica, range, &pool);
  std::printf("count:            %llu\n",
              static_cast<unsigned long long>(s.count));
  std::printf("distinct objects: %llu\n",
              static_cast<unsigned long long>(s.distinct_objects));
  std::printf("occupancy rate:   %.1f%%\n", 100.0 * s.OccupancyRate());
  std::printf("mean speed:       %.1f km/h\n", s.MeanSpeed());
  if (s.count > 0)
    std::printf("time span:        %lld .. %lld\n",
                static_cast<long long>(s.first_time),
                static_cast<long long>(s.last_time));
  return 0;
}

int CmdTrajectory(const Flags& flags) {
  const Replica replica = SegmentStore::Load(flags.GetString("dir"));
  const std::uint32_t oid =
      static_cast<std::uint32_t>(flags.GetInt("oid"));
  const std::int64_t from = flags.GetInt(
      "from", static_cast<std::int64_t>(replica.universe().t_min()));
  const std::int64_t to = flags.GetInt(
      "to", static_cast<std::int64_t>(replica.universe().t_max()));
  const std::int64_t limit = flags.GetInt("limit", 20);
  ThreadPool pool(4);
  const TrajectoryIndex index(replica, &pool);
  const auto result = index.Query(replica, oid, from, to, &pool);
  std::printf("object %u: %zu samples in [%lld, %lld] "
              "(scanned %zu of %zu time-matching partitions)\n",
              oid, result.records.size(), static_cast<long long>(from),
              static_cast<long long>(to), result.partitions_scanned,
              result.partitions_considered);
  std::int64_t shown = 0;
  for (const Record& r : result.records) {
    if (shown++ >= limit) {
      std::printf("...\n");
      break;
    }
    std::printf("t=%lld lon=%.6f lat=%.6f speed=%.1f\n",
                static_cast<long long>(r.time), r.x, r.y,
                static_cast<double>(r.speed));
  }
  return 0;
}

int CmdRecover(const Flags& flags) {
  EnableMetricsIfRequested(flags);
  const Replica source = SegmentStore::Load(flags.GetString("from"));
  const std::string to = flags.GetString("to");
  const Replica damaged = SegmentStore::Load(to);
  ThreadPool pool(4);
  const Replica recovered =
      RecoverReplica(source, damaged.config(), &pool);
  SegmentStore::Save(recovered, to);
  std::printf("recovered %s (%llu records) from %s\n",
              recovered.config().Name().c_str(),
              static_cast<unsigned long long>(recovered.NumRecords()),
              source.config().Name().c_str());
  WriteMetricsIfRequested(flags);
  return 0;
}

// Builds a multi-replica store from a ;-separated scheme list and
// persists it (dataset + all replicas).
int CmdStoreBuild(const Flags& flags) {
  EnableMetricsIfRequested(flags);
  const Dataset dataset = LoadDataset(flags.GetString("data"));
  const std::string schemes =
      flags.GetString("schemes", "KD4xT4/ROW-SNAPPY;KD64xT16/COL-GZIP");
  ThreadPool pool(4);
  BlotStore store(dataset);
  std::size_t start = 0;
  while (start <= schemes.size()) {
    const std::size_t semi = schemes.find(';', start);
    const std::string scheme = schemes.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    require(!scheme.empty(), "empty scheme in list: " + schemes);
    store.AddReplica(ParseReplicaConfig(scheme, false), &pool);
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  const std::string dir = flags.GetString("out");
  store.Save(dir);
  std::printf("store with %zu replicas (%.2f MiB total) -> %s\n",
              store.NumReplicas(),
              double(store.TotalStorageBytes()) / (1 << 20), dir.c_str());
  WriteMetricsIfRequested(flags);
  return 0;
}

// Routed query against a persisted multi-replica store. With
// --concurrency N and/or --repeat K the query runs K times scheduled
// over N request workers through the serving layer (serve::QueryServer),
// so the CLI exercises the same admission/scheduling path as a server;
// exit codes are unchanged (a failing run surfaces its error, e.g. 4 on
// QueryFailedError) and --profile prints the first run's stage profile.
int CmdStoreQuery(const Flags& flags) {
  EnableMetricsIfRequested(flags);
  ConfigureCacheIfRequested(flags);
  ArmFaultsIfRequested(flags);
  OpenEventLogIfRequested(flags);
  // --profile wants the stage breakdown, which is only populated when the
  // registry (or a trace) is on; it also runs the scan single-threaded so
  // the sub-stage wall times are additive and sum to the total.
  const bool profile_requested = flags.Has("profile");
  if (profile_requested) obs::MetricsRegistry::global().set_enabled(true);
  const std::size_t concurrency =
      static_cast<std::size_t>(flags.GetInt("concurrency", 1));
  const std::size_t repeat =
      static_cast<std::size_t>(flags.GetInt("repeat", 1));
  require(concurrency >= 1, "--concurrency must be at least 1");
  require(repeat >= 1, "--repeat must be at least 1");
  const bool concurrent = concurrency > 1 || repeat > 1;
  require(!(concurrent && flags.Has("trace")),
          "--trace requires --concurrency 1 --repeat 1");
  // Non-const: Execute may quarantine and self-heal faulty partitions.
  BlotStore store = BlotStore::Load(flags.GetString("dir"));
  // --scan-parallelism N caps how many partitions one query scans
  // concurrently (0 = uncapped); results are identical either way.
  store.SetMaxScanParallelism(
      static_cast<std::size_t>(flags.GetInt("scan-parallelism", 0)));
  const STRange range = ParseRange(flags.GetString("range"));
  const std::string env_name = flags.GetString("env", "hadoop");
  const CostModel model{env_name == "s3" ? EnvironmentModel::AmazonS3Emr()
                                         : EnvironmentModel::LocalHadoop()};
  const double deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  const double hedge_ms = flags.GetDouble("hedge-ms", 0.0);
  const bool allow_partial = flags.Has("allow-partial");
  require(deadline_ms >= 0.0, "--deadline-ms must be >= 0");
  require(hedge_ms >= 0.0, "--hedge-ms must be >= 0");
  if (concurrent) {
    serve::ServerOptions options;
    options.worker_threads = concurrency;
    // The CLI never sheds its own runs: admit everything up front.
    options.max_inflight = repeat + concurrency;
    options.default_deadline_ms = deadline_ms;
    options.hedge_ms = hedge_ms;
    options.allow_partial = allow_partial;
    serve::QueryServer server(store, model, options);
    std::vector<std::future<BlotStore::RoutedResult>> futures;
    futures.reserve(repeat);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < repeat; ++k)
      futures.push_back(server.Submit(range));
    std::vector<double> run_ms;
    run_ms.reserve(repeat);
    std::size_t first_count = 0;
    bool counts_agree = true;
    bool first_full_seen = false;
    std::size_t partial_runs = 0;
    std::size_t partial_served = 0, partial_total = 0;
    for (std::size_t k = 0; k < repeat; ++k) {
      // get() rethrows, so a failing run keeps the exit-code contract
      // (QueryFailedError -> 4, CorruptData -> 3, ...).
      const auto routed = futures[k].get();
      run_ms.push_back(routed.measured_cost_ms);
      if (k == 0) {
        if (profile_requested)
          std::fputs(routed.profile.Render().c_str(), stdout);
        std::printf("routed to replica %zu (%s): %zu records\n",
                    routed.replica_index,
                    store.replica(routed.replica_index).config().Name().c_str(),
                    routed.result.records.size());
      }
      if (routed.partial) {
        // A partial run legitimately returns fewer records; it reports
        // its coverage instead of entering the count agreement check.
        ++partial_runs;
        partial_served = routed.result.served_partitions.size();
        partial_total = partial_served + routed.result.missed_partitions.size();
        continue;
      }
      if (!first_full_seen) {
        first_full_seen = true;
        first_count = routed.result.records.size();
      } else if (routed.result.records.size() != first_count) {
        counts_agree = false;
      }
    }
    server.Drain();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::printf(
        "%zu runs on %zu workers in %.2f ms (%.1f queries/s); "
        "per-run p50 %.2f ms, p95 %.2f ms\n",
        repeat, concurrency, wall_ms,
        wall_ms > 0 ? 1000.0 * double(repeat) / wall_ms : 0.0,
        Percentile(run_ms, 50), Percentile(run_ms, 95));
    require(counts_agree, "concurrent runs returned differing record counts");
    if (partial_runs > 0)
      std::printf("partial: served %zu/%zu partitions (%zu of %zu runs)\n",
                  partial_served, partial_total, partial_runs, repeat);
    PrintCacheSummaryIfEnabled();
    PrintFaultSummaryIfArmed(flags);
    WriteMetricsIfRequested(flags);
    CloseEventLogIfOpen();
    return partial_runs > 0 ? 5 : 0;
  }
  ThreadPool pool(4);
  obs::TraceSpan root("store-query");
  const auto routed = [&] {
    obs::SpanTimer timer(&root);
    BlotStore::ExecOptions exec;
    exec.pool = profile_requested ? nullptr : &pool;
    exec.trace = flags.Has("trace") ? &root : nullptr;
    exec.deadline_ms = deadline_ms;
    exec.allow_partial = allow_partial;
    exec.hedge_ms = hedge_ms;
    return store.Execute(range, model, exec);
  }();
  if (flags.Has("trace")) std::fputs(root.Render().c_str(), stdout);
  if (profile_requested) std::fputs(routed.profile.Render().c_str(), stdout);
  std::printf("routed to replica %zu (%s), estimated %.1f s, "
              "measured %.2f ms\n",
              routed.replica_index,
              store.replica(routed.replica_index).config().Name().c_str(),
              routed.estimated_cost_ms / 1000.0, routed.measured_cost_ms);
  if (routed.degraded)
    std::printf("degraded: served by %s after %zu attempt(s) "
                "(faulty copies quarantined)\n",
                routed.served_by.c_str(), routed.attempts);
  if (routed.hedged)
    std::printf("hedged: backup attempt %s\n",
                routed.hedge_backup_won ? "won" : "lost");
  std::printf("%zu records (scanned %llu in %zu partitions)\n",
              routed.result.records.size(),
              static_cast<unsigned long long>(
                  routed.result.stats.records_scanned),
              routed.result.stats.partitions_scanned);
  if (routed.partial)
    std::printf("partial: served %zu/%zu partitions\n",
                routed.result.served_partitions.size(),
                routed.result.served_partitions.size() +
                    routed.result.missed_partitions.size());
  PrintCacheSummaryIfEnabled();
  PrintFaultSummaryIfArmed(flags);
  WriteMetricsIfRequested(flags);
  CloseEventLogIfOpen();
  return routed.partial ? 5 : 0;
}

// Probes a persisted store with a routed sample workload and emits the
// resulting metrics snapshot — the quickest way to see, for real data on
// disk, how the cost model's estimates line up with measured execution
// (query.cost_error_pct) and where decode time goes (codec.decode_ms).
int CmdStats(const Flags& flags) {
  auto& registry = obs::MetricsRegistry::global();
  registry.set_enabled(true);
  ConfigureCacheIfRequested(flags);
  ArmFaultsIfRequested(flags);
  OpenEventLogIfRequested(flags);
  // Non-const: probe queries may quarantine and repair partitions.
  BlotStore store = BlotStore::Load(flags.GetString("dir"));
  const std::size_t num_queries =
      static_cast<std::size_t>(flags.GetInt("queries", 32));
  const std::string env_name = flags.GetString("env", "hadoop");
  const CostModel model{env_name == "s3" ? EnvironmentModel::AmazonS3Emr()
                                         : EnvironmentModel::LocalHadoop()};
  ThreadPool pool(4);
  Rng rng(flags.GetUint64("seed", 42));
  const STRange& universe = store.universe();

  // --snapshots-out FILE: sample the registry into a time series while
  // the probes run, and flush the ring as snapshot JSONL at the end
  // (blotmon --summary reconstructs the registry from it).
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter;
  if (flags.Has("snapshots-out")) {
    obs::SnapshotterOptions options;
    options.interval = std::chrono::milliseconds(
        flags.GetInt("snapshot-interval-ms", 50));
    snapshotter = std::make_unique<obs::MetricsSnapshotter>(options);
    snapshotter->SampleNow();  // baseline before any probe runs
    snapshotter->Start();
  }

  // Probe mix: mostly selective queries with some large scans, echoing
  // the advisor's default workload shape.
  const double fractions[] = {0.01, 0.05, 0.2, 1.0};
  for (std::size_t i = 0; i < num_queries; ++i) {
    const double frac = fractions[i % 4];
    const STRange query = SampleQueryInstance(
        {{universe.Width() * frac, universe.Height() * frac,
          universe.Duration() * frac}},
        universe, rng);
    store.Execute(query, model, &pool);
  }

  if (snapshotter) {
    snapshotter->Stop();
    snapshotter->SampleNow();  // final state after the last probe
    const std::string path = flags.GetString("snapshots-out");
    snapshotter->WriteJsonlFile(path);
    std::fprintf(stderr, "%zu snapshots -> %s\n",
                 snapshotter->sample_count(), path.c_str());
  }

  // Fold the cache's hit ratio into the snapshot so the exported stats
  // answer "is the budget paying off" directly.
  PartitionCache& cache = PartitionCache::Global();
  if (cache.enabled())
    registry.GetGauge("cache.hit_ratio").Set(cache.stats().HitRatio());

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const std::string format = flags.GetString("format", "json");
  require(format == "json" || format == "prom",
          "format must be json or prom");
  const std::string rendered =
      format == "json" ? snapshot.ToJson() : snapshot.ToPrometheus();
  if (flags.Has("out")) {
    const std::string path = flags.GetString("out");
    std::ofstream out(path, std::ios::trunc);
    require(out.good(), "cannot open output: " + path);
    out << rendered;
    std::fprintf(stderr, "ran %zu probe queries against %zu replicas; "
                 "snapshot -> %s\n",
                 num_queries, store.NumReplicas(), path.c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  if (cache.enabled()) {
    const PartitionCache::Stats s = cache.stats();
    std::fprintf(stderr,
                 "cache: %llu hits / %llu misses (%.1f%% hit ratio), "
                 "%.2f MiB resident\n",
                 static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.misses),
                 100.0 * s.HitRatio(), double(s.bytes) / (1 << 20));
  }
  PrintFaultSummaryIfArmed(flags);
  CloseEventLogIfOpen();
  return 0;
}

int CmdAdvise(const Flags& flags) {
  EnableMetricsIfRequested(flags);
  const Dataset dataset = LoadDataset(flags.GetString("data"));
  const std::uint64_t records = static_cast<std::uint64_t>(
      flags.GetInt("records", static_cast<std::int64_t>(dataset.size())));
  const double budget_gb = flags.GetDouble(
      "budget-gb",
      3.0 * double(records) * kRecordRowBytes / 1e9);
  const std::string env_name = flags.GetString("env", "hadoop");
  const CostModel model{env_name == "s3"
                            ? EnvironmentModel::AmazonS3Emr()
                            : EnvironmentModel::LocalHadoop()};
  AdvisorOptions options;
  options.algorithm = flags.GetString("algorithm", "greedy") == "mip"
                          ? SelectionAlgorithm::kMip
                          : SelectionAlgorithm::kGreedy;
  const STRange universe = dataset.BoundingBox();
  Workload workload;  // default: varied sizes, small queries frequent
  for (const auto& [frac, weight] :
       std::vector<std::pair<double, double>>{
           {0.01, 100}, {0.05, 20}, {0.2, 4}, {1.0, 1}}) {
    workload.Add({{universe.Width() * frac, universe.Height() * frac,
                   universe.Duration() * frac}},
                 weight);
  }
  const AdvisorReport report =
      AdviseReplicas(dataset, universe, records, workload, model,
                     budget_gb * 1e9, options);
  std::printf("dataset: %llu records; budget %.2f GB; environment %s\n",
              static_cast<unsigned long long>(records), budget_gb,
              env_name.c_str());
  std::printf("recommended replicas:\n");
  for (const ReplicaConfig& config : report.chosen)
    std::printf("  %s\n", config.Name().c_str());
  std::printf("predicted workload cost %.1f s (single replica %.1f s, "
              "ideal %.1f s; speedup %.2fx)\n",
              report.selection.workload_cost / 1000.0,
              report.best_single_cost_ms / 1000.0,
              report.ideal_cost_ms / 1000.0, report.SpeedupOverSingle());
  WriteMetricsIfRequested(flags);
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help") return Usage();
  if (command == "generate")
    return CmdGenerate(
        {argc, argv, 2, {"out", "taxis", "samples", "seed", "format"}});
  if (command == "build")
    return CmdBuild({argc, argv, 2,
                     {"data", "out", "scheme", "hybrid", "metrics-out"}});
  if (command == "info") return CmdInfo({argc, argv, 2, {"dir"}});
  if (command == "query")
    return CmdQuery({argc, argv, 2,
                     {"dir", "range", "limit", "metrics-out", "cache-mb",
                      "inject-faults", "event-log"},
                     {"trace"}});
  if (command == "aggregate")
    return CmdAggregate({argc, argv, 2, {"dir", "range"}});
  if (command == "trajectory")
    return CmdTrajectory(
        {argc, argv, 2, {"dir", "oid", "from", "to", "limit"}});
  if (command == "recover")
    return CmdRecover({argc, argv, 2, {"from", "to", "metrics-out"}});
  if (command == "store-build")
    return CmdStoreBuild(
        {argc, argv, 2, {"data", "out", "schemes", "metrics-out"}});
  if (command == "store-query")
    return CmdStoreQuery({argc, argv, 2,
                          {"dir", "range", "env", "metrics-out",
                           "cache-mb", "inject-faults", "event-log",
                           "concurrency", "repeat", "scan-parallelism",
                           "deadline-ms", "hedge-ms"},
                          {"trace", "profile", "allow-partial"}});
  if (command == "advise")
    return CmdAdvise({argc, argv, 2,
                      {"data", "records", "budget-gb", "env", "algorithm",
                       "metrics-out"}});
  if (command == "stats")
    return CmdStats({argc, argv, 2,
                     {"dir", "queries", "env", "seed", "format", "out",
                      "cache-mb", "inject-faults", "event-log",
                      "snapshots-out", "snapshot-interval-ms"}});
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage();
}

}  // namespace
}  // namespace blot::tools

// Exit codes are part of the CLI contract (asserted by the tools tests
// and usable from shell scripts): 2 = caller error, 3 = data corruption
// detected, 4 = query unservable (every healthy copy gone), 5 = partial
// result served (returned by CmdStoreQuery, not thrown), 6 = deadline
// exceeded, 1 = any other failure. Each gets a one-line diagnostic
// naming the class. DeadlineExceededError must be caught before
// blot::Error, which it derives from.
int main(int argc, char** argv) {
  try {
    return blot::tools::Run(argc, argv);
  } catch (const blot::DeadlineExceededError& e) {
    std::fprintf(stderr, "deadline exceeded: %s\n", e.what());
    return 6;
  } catch (const blot::QueryFailedError& e) {
    std::fprintf(stderr, "query failed: %s\n", e.what());
    return 4;
  } catch (const blot::InvalidArgument& e) {
    std::fprintf(stderr, "invalid argument: %s\n", e.what());
    return 2;
  } catch (const blot::CorruptData& e) {
    std::fprintf(stderr, "corrupt data: %s\n", e.what());
    return 3;
  } catch (const blot::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Foreign exceptions here are malformed numeric flags (std::stod and
    // friends), i.e. caller errors.
    std::fprintf(stderr, "invalid argument: %s\n", e.what());
    return 2;
  }
}
