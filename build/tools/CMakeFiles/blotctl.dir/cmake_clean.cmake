file(REMOVE_RECURSE
  "CMakeFiles/blotctl.dir/blotctl.cpp.o"
  "CMakeFiles/blotctl.dir/blotctl.cpp.o.d"
  "blotctl"
  "blotctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blotctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
