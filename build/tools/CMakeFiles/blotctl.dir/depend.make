# Empty dependencies file for blotctl.
# This may be replaced when dependencies are built.
