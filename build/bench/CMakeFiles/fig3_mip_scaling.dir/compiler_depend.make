# Empty compiler generated dependencies file for fig3_mip_scaling.
# This may be replaced when dependencies are built.
