# Empty compiler generated dependencies file for fig6_datasize_sweep.
# This may be replaced when dependencies are built.
