file(REMOVE_RECURSE
  "CMakeFiles/table2_scanrate.dir/table2_scanrate.cpp.o"
  "CMakeFiles/table2_scanrate.dir/table2_scanrate.cpp.o.d"
  "table2_scanrate"
  "table2_scanrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scanrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
