# Empty dependencies file for table2_scanrate.
# This may be replaced when dependencies are built.
