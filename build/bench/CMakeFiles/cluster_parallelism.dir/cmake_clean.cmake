file(REMOVE_RECURSE
  "CMakeFiles/cluster_parallelism.dir/cluster_parallelism.cpp.o"
  "CMakeFiles/cluster_parallelism.dir/cluster_parallelism.cpp.o.d"
  "cluster_parallelism"
  "cluster_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
