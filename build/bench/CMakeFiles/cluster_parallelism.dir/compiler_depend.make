# Empty compiler generated dependencies file for cluster_parallelism.
# This may be replaced when dependencies are built.
