file(REMOVE_RECURSE
  "CMakeFiles/encoding_frontier.dir/encoding_frontier.cpp.o"
  "CMakeFiles/encoding_frontier.dir/encoding_frontier.cpp.o.d"
  "encoding_frontier"
  "encoding_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
