# Empty dependencies file for encoding_frontier.
# This may be replaced when dependencies are built.
