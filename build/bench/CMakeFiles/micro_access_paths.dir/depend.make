# Empty dependencies file for micro_access_paths.
# This may be replaced when dependencies are built.
