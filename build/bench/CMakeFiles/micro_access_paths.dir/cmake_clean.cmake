file(REMOVE_RECURSE
  "CMakeFiles/micro_access_paths.dir/micro_access_paths.cpp.o"
  "CMakeFiles/micro_access_paths.dir/micro_access_paths.cpp.o.d"
  "micro_access_paths"
  "micro_access_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_access_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
