# Empty dependencies file for fig4_budget_sweep.
# This may be replaced when dependencies are built.
