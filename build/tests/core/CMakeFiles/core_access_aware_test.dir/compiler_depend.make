# Empty compiler generated dependencies file for core_access_aware_test.
# This may be replaced when dependencies are built.
