file(REMOVE_RECURSE
  "CMakeFiles/core_workload_test.dir/workload_test.cc.o"
  "CMakeFiles/core_workload_test.dir/workload_test.cc.o.d"
  "core_workload_test"
  "core_workload_test.pdb"
  "core_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
