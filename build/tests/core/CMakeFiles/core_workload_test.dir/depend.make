# Empty dependencies file for core_workload_test.
# This may be replaced when dependencies are built.
