# Empty dependencies file for core_store_persistence_test.
# This may be replaced when dependencies are built.
