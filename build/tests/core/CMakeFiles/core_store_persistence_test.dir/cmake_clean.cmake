file(REMOVE_RECURSE
  "CMakeFiles/core_store_persistence_test.dir/store_persistence_test.cc.o"
  "CMakeFiles/core_store_persistence_test.dir/store_persistence_test.cc.o.d"
  "core_store_persistence_test"
  "core_store_persistence_test.pdb"
  "core_store_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_store_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
