file(REMOVE_RECURSE
  "CMakeFiles/core_partial_test.dir/partial_test.cc.o"
  "CMakeFiles/core_partial_test.dir/partial_test.cc.o.d"
  "core_partial_test"
  "core_partial_test.pdb"
  "core_partial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_partial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
