# Empty compiler generated dependencies file for core_partial_test.
# This may be replaced when dependencies are built.
