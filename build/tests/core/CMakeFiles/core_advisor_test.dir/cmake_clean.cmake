file(REMOVE_RECURSE
  "CMakeFiles/core_advisor_test.dir/advisor_test.cc.o"
  "CMakeFiles/core_advisor_test.dir/advisor_test.cc.o.d"
  "core_advisor_test"
  "core_advisor_test.pdb"
  "core_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
