# Empty compiler generated dependencies file for core_candidates_test.
# This may be replaced when dependencies are built.
