file(REMOVE_RECURSE
  "CMakeFiles/core_candidates_test.dir/candidates_test.cc.o"
  "CMakeFiles/core_candidates_test.dir/candidates_test.cc.o.d"
  "core_candidates_test"
  "core_candidates_test.pdb"
  "core_candidates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_candidates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
