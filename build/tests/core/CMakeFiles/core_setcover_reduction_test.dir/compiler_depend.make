# Empty compiler generated dependencies file for core_setcover_reduction_test.
# This may be replaced when dependencies are built.
