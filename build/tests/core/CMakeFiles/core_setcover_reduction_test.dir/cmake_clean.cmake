file(REMOVE_RECURSE
  "CMakeFiles/core_setcover_reduction_test.dir/setcover_reduction_test.cc.o"
  "CMakeFiles/core_setcover_reduction_test.dir/setcover_reduction_test.cc.o.d"
  "core_setcover_reduction_test"
  "core_setcover_reduction_test.pdb"
  "core_setcover_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_setcover_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
