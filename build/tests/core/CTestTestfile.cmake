# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/core_workload_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_selection_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_mip_selection_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_setcover_reduction_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_store_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_advisor_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_partial_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_drift_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_store_partial_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_cost_model_property_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_access_aware_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_store_persistence_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_streaming_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_candidates_test[1]_include.cmake")
