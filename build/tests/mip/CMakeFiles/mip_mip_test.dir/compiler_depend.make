# Empty compiler generated dependencies file for mip_mip_test.
# This may be replaced when dependencies are built.
