# CMake generated Testfile for 
# Source directory: /root/repo/tests/mip
# Build directory: /root/repo/build/tests/mip
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mip/mip_lp_test[1]_include.cmake")
include("/root/repo/build/tests/mip/mip_mip_test[1]_include.cmake")
