# CMake generated Testfile for 
# Source directory: /root/repo/tests/codec
# Build directory: /root/repo/build/tests/codec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/codec/codec_bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/codec/codec_huffman_test[1]_include.cmake")
include("/root/repo/build/tests/codec/codec_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/codec/codec_columnar_test[1]_include.cmake")
include("/root/repo/build/tests/codec/codec_range_coder_test[1]_include.cmake")
include("/root/repo/build/tests/codec/codec_fuzz_robustness_test[1]_include.cmake")
