file(REMOVE_RECURSE
  "CMakeFiles/codec_huffman_test.dir/huffman_test.cc.o"
  "CMakeFiles/codec_huffman_test.dir/huffman_test.cc.o.d"
  "codec_huffman_test"
  "codec_huffman_test.pdb"
  "codec_huffman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_huffman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
