# Empty dependencies file for codec_range_coder_test.
# This may be replaced when dependencies are built.
