file(REMOVE_RECURSE
  "CMakeFiles/codec_range_coder_test.dir/range_coder_test.cc.o"
  "CMakeFiles/codec_range_coder_test.dir/range_coder_test.cc.o.d"
  "codec_range_coder_test"
  "codec_range_coder_test.pdb"
  "codec_range_coder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_range_coder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
