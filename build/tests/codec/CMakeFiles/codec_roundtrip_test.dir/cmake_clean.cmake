file(REMOVE_RECURSE
  "CMakeFiles/codec_roundtrip_test.dir/roundtrip_test.cc.o"
  "CMakeFiles/codec_roundtrip_test.dir/roundtrip_test.cc.o.d"
  "codec_roundtrip_test"
  "codec_roundtrip_test.pdb"
  "codec_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
