file(REMOVE_RECURSE
  "CMakeFiles/codec_fuzz_robustness_test.dir/fuzz_robustness_test.cc.o"
  "CMakeFiles/codec_fuzz_robustness_test.dir/fuzz_robustness_test.cc.o.d"
  "codec_fuzz_robustness_test"
  "codec_fuzz_robustness_test.pdb"
  "codec_fuzz_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_fuzz_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
