file(REMOVE_RECURSE
  "CMakeFiles/codec_bitstream_test.dir/bitstream_test.cc.o"
  "CMakeFiles/codec_bitstream_test.dir/bitstream_test.cc.o.d"
  "codec_bitstream_test"
  "codec_bitstream_test.pdb"
  "codec_bitstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_bitstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
