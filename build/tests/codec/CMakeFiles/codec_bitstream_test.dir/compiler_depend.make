# Empty compiler generated dependencies file for codec_bitstream_test.
# This may be replaced when dependencies are built.
