file(REMOVE_RECURSE
  "CMakeFiles/codec_columnar_test.dir/columnar_test.cc.o"
  "CMakeFiles/codec_columnar_test.dir/columnar_test.cc.o.d"
  "codec_columnar_test"
  "codec_columnar_test.pdb"
  "codec_columnar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_columnar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
