# Empty dependencies file for codec_columnar_test.
# This may be replaced when dependencies are built.
