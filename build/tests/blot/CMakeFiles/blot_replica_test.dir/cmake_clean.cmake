file(REMOVE_RECURSE
  "CMakeFiles/blot_replica_test.dir/replica_test.cc.o"
  "CMakeFiles/blot_replica_test.dir/replica_test.cc.o.d"
  "blot_replica_test"
  "blot_replica_test.pdb"
  "blot_replica_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_replica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
