# Empty dependencies file for blot_replica_test.
# This may be replaced when dependencies are built.
