# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for blot_replica_test.
