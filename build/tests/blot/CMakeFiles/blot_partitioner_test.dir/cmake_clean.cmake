file(REMOVE_RECURSE
  "CMakeFiles/blot_partitioner_test.dir/partitioner_test.cc.o"
  "CMakeFiles/blot_partitioner_test.dir/partitioner_test.cc.o.d"
  "blot_partitioner_test"
  "blot_partitioner_test.pdb"
  "blot_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
