# Empty dependencies file for blot_partitioner_test.
# This may be replaced when dependencies are built.
