# Empty dependencies file for blot_hybrid_encoding_test.
# This may be replaced when dependencies are built.
