file(REMOVE_RECURSE
  "CMakeFiles/blot_hybrid_encoding_test.dir/hybrid_encoding_test.cc.o"
  "CMakeFiles/blot_hybrid_encoding_test.dir/hybrid_encoding_test.cc.o.d"
  "blot_hybrid_encoding_test"
  "blot_hybrid_encoding_test.pdb"
  "blot_hybrid_encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_hybrid_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
