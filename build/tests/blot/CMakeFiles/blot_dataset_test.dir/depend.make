# Empty dependencies file for blot_dataset_test.
# This may be replaced when dependencies are built.
