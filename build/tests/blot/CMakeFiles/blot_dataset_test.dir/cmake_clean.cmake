file(REMOVE_RECURSE
  "CMakeFiles/blot_dataset_test.dir/dataset_test.cc.o"
  "CMakeFiles/blot_dataset_test.dir/dataset_test.cc.o.d"
  "blot_dataset_test"
  "blot_dataset_test.pdb"
  "blot_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
