# Empty dependencies file for blot_segment_store_test.
# This may be replaced when dependencies are built.
