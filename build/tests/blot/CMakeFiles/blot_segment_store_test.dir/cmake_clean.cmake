file(REMOVE_RECURSE
  "CMakeFiles/blot_segment_store_test.dir/segment_store_test.cc.o"
  "CMakeFiles/blot_segment_store_test.dir/segment_store_test.cc.o.d"
  "blot_segment_store_test"
  "blot_segment_store_test.pdb"
  "blot_segment_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_segment_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
