# Empty dependencies file for blot_aggregate_test.
# This may be replaced when dependencies are built.
