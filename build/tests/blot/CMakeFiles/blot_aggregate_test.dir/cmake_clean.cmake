file(REMOVE_RECURSE
  "CMakeFiles/blot_aggregate_test.dir/aggregate_test.cc.o"
  "CMakeFiles/blot_aggregate_test.dir/aggregate_test.cc.o.d"
  "blot_aggregate_test"
  "blot_aggregate_test.pdb"
  "blot_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
