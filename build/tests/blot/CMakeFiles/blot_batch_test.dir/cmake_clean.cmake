file(REMOVE_RECURSE
  "CMakeFiles/blot_batch_test.dir/batch_test.cc.o"
  "CMakeFiles/blot_batch_test.dir/batch_test.cc.o.d"
  "blot_batch_test"
  "blot_batch_test.pdb"
  "blot_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
