# Empty compiler generated dependencies file for blot_batch_test.
# This may be replaced when dependencies are built.
