# Empty dependencies file for blot_encoding_scheme_test.
# This may be replaced when dependencies are built.
