file(REMOVE_RECURSE
  "CMakeFiles/blot_encoding_scheme_test.dir/encoding_scheme_test.cc.o"
  "CMakeFiles/blot_encoding_scheme_test.dir/encoding_scheme_test.cc.o.d"
  "blot_encoding_scheme_test"
  "blot_encoding_scheme_test.pdb"
  "blot_encoding_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_encoding_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
