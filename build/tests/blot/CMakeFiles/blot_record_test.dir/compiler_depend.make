# Empty compiler generated dependencies file for blot_record_test.
# This may be replaced when dependencies are built.
