file(REMOVE_RECURSE
  "CMakeFiles/blot_record_test.dir/record_test.cc.o"
  "CMakeFiles/blot_record_test.dir/record_test.cc.o.d"
  "blot_record_test"
  "blot_record_test.pdb"
  "blot_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
