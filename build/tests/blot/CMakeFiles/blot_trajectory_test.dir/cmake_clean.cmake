file(REMOVE_RECURSE
  "CMakeFiles/blot_trajectory_test.dir/trajectory_test.cc.o"
  "CMakeFiles/blot_trajectory_test.dir/trajectory_test.cc.o.d"
  "blot_trajectory_test"
  "blot_trajectory_test.pdb"
  "blot_trajectory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_trajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
