# Empty compiler generated dependencies file for blot_trajectory_test.
# This may be replaced when dependencies are built.
