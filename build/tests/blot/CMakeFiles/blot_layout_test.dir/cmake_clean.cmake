file(REMOVE_RECURSE
  "CMakeFiles/blot_layout_test.dir/layout_test.cc.o"
  "CMakeFiles/blot_layout_test.dir/layout_test.cc.o.d"
  "blot_layout_test"
  "blot_layout_test.pdb"
  "blot_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
