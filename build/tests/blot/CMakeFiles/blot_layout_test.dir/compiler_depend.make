# Empty compiler generated dependencies file for blot_layout_test.
# This may be replaced when dependencies are built.
