# Empty dependencies file for blot_partition_index_test.
# This may be replaced when dependencies are built.
