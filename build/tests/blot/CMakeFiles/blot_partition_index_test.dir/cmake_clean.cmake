file(REMOVE_RECURSE
  "CMakeFiles/blot_partition_index_test.dir/partition_index_test.cc.o"
  "CMakeFiles/blot_partition_index_test.dir/partition_index_test.cc.o.d"
  "blot_partition_index_test"
  "blot_partition_index_test.pdb"
  "blot_partition_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_partition_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
