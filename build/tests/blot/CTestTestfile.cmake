# CMake generated Testfile for 
# Source directory: /root/repo/tests/blot
# Build directory: /root/repo/build/tests/blot
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/blot/blot_record_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_dataset_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_layout_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_encoding_scheme_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_partition_index_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_replica_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_segment_store_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_hybrid_encoding_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_trajectory_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_partitioner_property_test[1]_include.cmake")
include("/root/repo/build/tests/blot/blot_batch_test[1]_include.cmake")
