file(REMOVE_RECURSE
  "CMakeFiles/gen_taxi_generator_test.dir/taxi_generator_test.cc.o"
  "CMakeFiles/gen_taxi_generator_test.dir/taxi_generator_test.cc.o.d"
  "gen_taxi_generator_test"
  "gen_taxi_generator_test.pdb"
  "gen_taxi_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_taxi_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
