# Empty dependencies file for gen_taxi_generator_test.
# This may be replaced when dependencies are built.
