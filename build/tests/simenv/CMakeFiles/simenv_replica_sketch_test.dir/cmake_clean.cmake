file(REMOVE_RECURSE
  "CMakeFiles/simenv_replica_sketch_test.dir/replica_sketch_test.cc.o"
  "CMakeFiles/simenv_replica_sketch_test.dir/replica_sketch_test.cc.o.d"
  "simenv_replica_sketch_test"
  "simenv_replica_sketch_test.pdb"
  "simenv_replica_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simenv_replica_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
