# Empty compiler generated dependencies file for simenv_replica_sketch_test.
# This may be replaced when dependencies are built.
