file(REMOVE_RECURSE
  "CMakeFiles/simenv_measurement_test.dir/measurement_test.cc.o"
  "CMakeFiles/simenv_measurement_test.dir/measurement_test.cc.o.d"
  "simenv_measurement_test"
  "simenv_measurement_test.pdb"
  "simenv_measurement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simenv_measurement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
