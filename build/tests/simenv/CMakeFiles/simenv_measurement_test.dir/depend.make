# Empty dependencies file for simenv_measurement_test.
# This may be replaced when dependencies are built.
