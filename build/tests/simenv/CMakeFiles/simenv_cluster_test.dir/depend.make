# Empty dependencies file for simenv_cluster_test.
# This may be replaced when dependencies are built.
