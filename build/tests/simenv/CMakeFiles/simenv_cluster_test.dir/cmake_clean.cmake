file(REMOVE_RECURSE
  "CMakeFiles/simenv_cluster_test.dir/cluster_test.cc.o"
  "CMakeFiles/simenv_cluster_test.dir/cluster_test.cc.o.d"
  "simenv_cluster_test"
  "simenv_cluster_test.pdb"
  "simenv_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simenv_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
