file(REMOVE_RECURSE
  "CMakeFiles/simenv_simulator_test.dir/simulator_test.cc.o"
  "CMakeFiles/simenv_simulator_test.dir/simulator_test.cc.o.d"
  "simenv_simulator_test"
  "simenv_simulator_test.pdb"
  "simenv_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simenv_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
