
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simenv/simulator_test.cc" "tests/simenv/CMakeFiles/simenv_simulator_test.dir/simulator_test.cc.o" "gcc" "tests/simenv/CMakeFiles/simenv_simulator_test.dir/simulator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simenv/CMakeFiles/blot_simenv.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/blot_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/blot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blot/CMakeFiles/blot_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/blot_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/mip/CMakeFiles/blot_mip.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
