# Empty compiler generated dependencies file for simenv_simulator_test.
# This may be replaced when dependencies are built.
