file(REMOVE_RECURSE
  "CMakeFiles/simenv_environment_test.dir/environment_test.cc.o"
  "CMakeFiles/simenv_environment_test.dir/environment_test.cc.o.d"
  "simenv_environment_test"
  "simenv_environment_test.pdb"
  "simenv_environment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simenv_environment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
