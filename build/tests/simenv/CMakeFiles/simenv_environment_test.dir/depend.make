# Empty dependencies file for simenv_environment_test.
# This may be replaced when dependencies are built.
