# CMake generated Testfile for 
# Source directory: /root/repo/tests/simenv
# Build directory: /root/repo/build/tests/simenv
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simenv/simenv_environment_test[1]_include.cmake")
include("/root/repo/build/tests/simenv/simenv_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/simenv/simenv_measurement_test[1]_include.cmake")
include("/root/repo/build/tests/simenv/simenv_replica_sketch_test[1]_include.cmake")
include("/root/repo/build/tests/simenv/simenv_cluster_test[1]_include.cmake")
