# Empty dependencies file for util_range_test.
# This may be replaced when dependencies are built.
