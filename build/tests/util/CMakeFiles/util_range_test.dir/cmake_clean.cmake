file(REMOVE_RECURSE
  "CMakeFiles/util_range_test.dir/range_test.cc.o"
  "CMakeFiles/util_range_test.dir/range_test.cc.o.d"
  "util_range_test"
  "util_range_test.pdb"
  "util_range_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
