file(REMOVE_RECURSE
  "CMakeFiles/tools_flags_test.dir/flags_test.cc.o"
  "CMakeFiles/tools_flags_test.dir/flags_test.cc.o.d"
  "tools_flags_test"
  "tools_flags_test.pdb"
  "tools_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
