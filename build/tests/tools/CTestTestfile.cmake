# CMake generated Testfile for 
# Source directory: /root/repo/tests/tools
# Build directory: /root/repo/build/tests/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tools/tools_flags_test[1]_include.cmake")
add_test([=[tools_blotctl_end_to_end]=] "/root/repo/tests/tools/blotctl_test.sh" "/root/repo/build/tools/blotctl")
set_tests_properties([=[tools_blotctl_end_to_end]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/tools/CMakeLists.txt;1;add_test;/root/repo/tests/tools/CMakeLists.txt;0;")
