file(REMOVE_RECURSE
  "CMakeFiles/replica_advisor.dir/replica_advisor.cpp.o"
  "CMakeFiles/replica_advisor.dir/replica_advisor.cpp.o.d"
  "replica_advisor"
  "replica_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
