# Empty dependencies file for replica_advisor.
# This may be replaced when dependencies are built.
