# Empty compiler generated dependencies file for fleet_analytics.
# This may be replaced when dependencies are built.
