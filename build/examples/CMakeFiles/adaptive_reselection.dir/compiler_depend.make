# Empty compiler generated dependencies file for adaptive_reselection.
# This may be replaced when dependencies are built.
