file(REMOVE_RECURSE
  "CMakeFiles/adaptive_reselection.dir/adaptive_reselection.cpp.o"
  "CMakeFiles/adaptive_reselection.dir/adaptive_reselection.cpp.o.d"
  "adaptive_reselection"
  "adaptive_reselection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_reselection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
