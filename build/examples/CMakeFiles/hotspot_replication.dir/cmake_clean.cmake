file(REMOVE_RECURSE
  "CMakeFiles/hotspot_replication.dir/hotspot_replication.cpp.o"
  "CMakeFiles/hotspot_replication.dir/hotspot_replication.cpp.o.d"
  "hotspot_replication"
  "hotspot_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
