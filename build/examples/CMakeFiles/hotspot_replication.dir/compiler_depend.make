# Empty compiler generated dependencies file for hotspot_replication.
# This may be replaced when dependencies are built.
