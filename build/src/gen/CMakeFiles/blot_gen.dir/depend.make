# Empty dependencies file for blot_gen.
# This may be replaced when dependencies are built.
