file(REMOVE_RECURSE
  "CMakeFiles/blot_gen.dir/taxi_generator.cc.o"
  "CMakeFiles/blot_gen.dir/taxi_generator.cc.o.d"
  "libblot_gen.a"
  "libblot_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
