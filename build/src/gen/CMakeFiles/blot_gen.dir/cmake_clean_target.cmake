file(REMOVE_RECURSE
  "libblot_gen.a"
)
