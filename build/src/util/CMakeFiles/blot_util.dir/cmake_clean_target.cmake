file(REMOVE_RECURSE
  "libblot_util.a"
)
