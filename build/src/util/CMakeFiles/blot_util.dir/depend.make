# Empty dependencies file for blot_util.
# This may be replaced when dependencies are built.
