file(REMOVE_RECURSE
  "CMakeFiles/blot_util.dir/bytes.cc.o"
  "CMakeFiles/blot_util.dir/bytes.cc.o.d"
  "CMakeFiles/blot_util.dir/csv.cc.o"
  "CMakeFiles/blot_util.dir/csv.cc.o.d"
  "CMakeFiles/blot_util.dir/range.cc.o"
  "CMakeFiles/blot_util.dir/range.cc.o.d"
  "CMakeFiles/blot_util.dir/rng.cc.o"
  "CMakeFiles/blot_util.dir/rng.cc.o.d"
  "CMakeFiles/blot_util.dir/stats.cc.o"
  "CMakeFiles/blot_util.dir/stats.cc.o.d"
  "CMakeFiles/blot_util.dir/thread_pool.cc.o"
  "CMakeFiles/blot_util.dir/thread_pool.cc.o.d"
  "libblot_util.a"
  "libblot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
