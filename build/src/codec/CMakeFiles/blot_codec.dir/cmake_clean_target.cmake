file(REMOVE_RECURSE
  "libblot_codec.a"
)
