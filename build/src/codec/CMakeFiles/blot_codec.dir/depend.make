# Empty dependencies file for blot_codec.
# This may be replaced when dependencies are built.
