file(REMOVE_RECURSE
  "CMakeFiles/blot_codec.dir/bitstream.cc.o"
  "CMakeFiles/blot_codec.dir/bitstream.cc.o.d"
  "CMakeFiles/blot_codec.dir/codec.cc.o"
  "CMakeFiles/blot_codec.dir/codec.cc.o.d"
  "CMakeFiles/blot_codec.dir/columnar.cc.o"
  "CMakeFiles/blot_codec.dir/columnar.cc.o.d"
  "CMakeFiles/blot_codec.dir/gzip_like.cc.o"
  "CMakeFiles/blot_codec.dir/gzip_like.cc.o.d"
  "CMakeFiles/blot_codec.dir/huffman.cc.o"
  "CMakeFiles/blot_codec.dir/huffman.cc.o.d"
  "CMakeFiles/blot_codec.dir/lz_common.cc.o"
  "CMakeFiles/blot_codec.dir/lz_common.cc.o.d"
  "CMakeFiles/blot_codec.dir/lzma_like.cc.o"
  "CMakeFiles/blot_codec.dir/lzma_like.cc.o.d"
  "CMakeFiles/blot_codec.dir/range_coder.cc.o"
  "CMakeFiles/blot_codec.dir/range_coder.cc.o.d"
  "CMakeFiles/blot_codec.dir/snappy_like.cc.o"
  "CMakeFiles/blot_codec.dir/snappy_like.cc.o.d"
  "libblot_codec.a"
  "libblot_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
