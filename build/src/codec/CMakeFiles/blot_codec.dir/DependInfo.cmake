
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cc" "src/codec/CMakeFiles/blot_codec.dir/bitstream.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/bitstream.cc.o.d"
  "/root/repo/src/codec/codec.cc" "src/codec/CMakeFiles/blot_codec.dir/codec.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/codec.cc.o.d"
  "/root/repo/src/codec/columnar.cc" "src/codec/CMakeFiles/blot_codec.dir/columnar.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/columnar.cc.o.d"
  "/root/repo/src/codec/gzip_like.cc" "src/codec/CMakeFiles/blot_codec.dir/gzip_like.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/gzip_like.cc.o.d"
  "/root/repo/src/codec/huffman.cc" "src/codec/CMakeFiles/blot_codec.dir/huffman.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/huffman.cc.o.d"
  "/root/repo/src/codec/lz_common.cc" "src/codec/CMakeFiles/blot_codec.dir/lz_common.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/lz_common.cc.o.d"
  "/root/repo/src/codec/lzma_like.cc" "src/codec/CMakeFiles/blot_codec.dir/lzma_like.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/lzma_like.cc.o.d"
  "/root/repo/src/codec/range_coder.cc" "src/codec/CMakeFiles/blot_codec.dir/range_coder.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/range_coder.cc.o.d"
  "/root/repo/src/codec/snappy_like.cc" "src/codec/CMakeFiles/blot_codec.dir/snappy_like.cc.o" "gcc" "src/codec/CMakeFiles/blot_codec.dir/snappy_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/blot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
