# Empty compiler generated dependencies file for blot_core.
# This may be replaced when dependencies are built.
