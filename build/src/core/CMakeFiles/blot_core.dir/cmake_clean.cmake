file(REMOVE_RECURSE
  "CMakeFiles/blot_core.dir/access_aware.cc.o"
  "CMakeFiles/blot_core.dir/access_aware.cc.o.d"
  "CMakeFiles/blot_core.dir/advisor.cc.o"
  "CMakeFiles/blot_core.dir/advisor.cc.o.d"
  "CMakeFiles/blot_core.dir/candidates.cc.o"
  "CMakeFiles/blot_core.dir/candidates.cc.o.d"
  "CMakeFiles/blot_core.dir/cost_model.cc.o"
  "CMakeFiles/blot_core.dir/cost_model.cc.o.d"
  "CMakeFiles/blot_core.dir/drift.cc.o"
  "CMakeFiles/blot_core.dir/drift.cc.o.d"
  "CMakeFiles/blot_core.dir/mip_selection.cc.o"
  "CMakeFiles/blot_core.dir/mip_selection.cc.o.d"
  "CMakeFiles/blot_core.dir/partial.cc.o"
  "CMakeFiles/blot_core.dir/partial.cc.o.d"
  "CMakeFiles/blot_core.dir/selection.cc.o"
  "CMakeFiles/blot_core.dir/selection.cc.o.d"
  "CMakeFiles/blot_core.dir/store.cc.o"
  "CMakeFiles/blot_core.dir/store.cc.o.d"
  "CMakeFiles/blot_core.dir/streaming.cc.o"
  "CMakeFiles/blot_core.dir/streaming.cc.o.d"
  "CMakeFiles/blot_core.dir/workload.cc.o"
  "CMakeFiles/blot_core.dir/workload.cc.o.d"
  "libblot_core.a"
  "libblot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
