file(REMOVE_RECURSE
  "libblot_core.a"
)
