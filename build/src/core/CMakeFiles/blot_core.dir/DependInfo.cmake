
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_aware.cc" "src/core/CMakeFiles/blot_core.dir/access_aware.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/access_aware.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/blot_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/core/CMakeFiles/blot_core.dir/candidates.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/candidates.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/blot_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/drift.cc" "src/core/CMakeFiles/blot_core.dir/drift.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/drift.cc.o.d"
  "/root/repo/src/core/mip_selection.cc" "src/core/CMakeFiles/blot_core.dir/mip_selection.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/mip_selection.cc.o.d"
  "/root/repo/src/core/partial.cc" "src/core/CMakeFiles/blot_core.dir/partial.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/partial.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/core/CMakeFiles/blot_core.dir/selection.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/selection.cc.o.d"
  "/root/repo/src/core/store.cc" "src/core/CMakeFiles/blot_core.dir/store.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/store.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/blot_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/streaming.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/blot_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/blot_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blot/CMakeFiles/blot_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/simenv/CMakeFiles/blot_simenv.dir/DependInfo.cmake"
  "/root/repo/build/src/mip/CMakeFiles/blot_mip.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/blot_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
