# Empty compiler generated dependencies file for blot_storage.
# This may be replaced when dependencies are built.
