
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blot/aggregate.cc" "src/blot/CMakeFiles/blot_storage.dir/aggregate.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/aggregate.cc.o.d"
  "/root/repo/src/blot/batch.cc" "src/blot/CMakeFiles/blot_storage.dir/batch.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/batch.cc.o.d"
  "/root/repo/src/blot/dataset.cc" "src/blot/CMakeFiles/blot_storage.dir/dataset.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/dataset.cc.o.d"
  "/root/repo/src/blot/encoding_scheme.cc" "src/blot/CMakeFiles/blot_storage.dir/encoding_scheme.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/encoding_scheme.cc.o.d"
  "/root/repo/src/blot/layout.cc" "src/blot/CMakeFiles/blot_storage.dir/layout.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/layout.cc.o.d"
  "/root/repo/src/blot/partition_index.cc" "src/blot/CMakeFiles/blot_storage.dir/partition_index.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/partition_index.cc.o.d"
  "/root/repo/src/blot/partitioner.cc" "src/blot/CMakeFiles/blot_storage.dir/partitioner.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/partitioner.cc.o.d"
  "/root/repo/src/blot/record.cc" "src/blot/CMakeFiles/blot_storage.dir/record.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/record.cc.o.d"
  "/root/repo/src/blot/replica.cc" "src/blot/CMakeFiles/blot_storage.dir/replica.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/replica.cc.o.d"
  "/root/repo/src/blot/segment_store.cc" "src/blot/CMakeFiles/blot_storage.dir/segment_store.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/segment_store.cc.o.d"
  "/root/repo/src/blot/trajectory.cc" "src/blot/CMakeFiles/blot_storage.dir/trajectory.cc.o" "gcc" "src/blot/CMakeFiles/blot_storage.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/blot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/blot_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
