file(REMOVE_RECURSE
  "libblot_storage.a"
)
