file(REMOVE_RECURSE
  "CMakeFiles/blot_storage.dir/aggregate.cc.o"
  "CMakeFiles/blot_storage.dir/aggregate.cc.o.d"
  "CMakeFiles/blot_storage.dir/batch.cc.o"
  "CMakeFiles/blot_storage.dir/batch.cc.o.d"
  "CMakeFiles/blot_storage.dir/dataset.cc.o"
  "CMakeFiles/blot_storage.dir/dataset.cc.o.d"
  "CMakeFiles/blot_storage.dir/encoding_scheme.cc.o"
  "CMakeFiles/blot_storage.dir/encoding_scheme.cc.o.d"
  "CMakeFiles/blot_storage.dir/layout.cc.o"
  "CMakeFiles/blot_storage.dir/layout.cc.o.d"
  "CMakeFiles/blot_storage.dir/partition_index.cc.o"
  "CMakeFiles/blot_storage.dir/partition_index.cc.o.d"
  "CMakeFiles/blot_storage.dir/partitioner.cc.o"
  "CMakeFiles/blot_storage.dir/partitioner.cc.o.d"
  "CMakeFiles/blot_storage.dir/record.cc.o"
  "CMakeFiles/blot_storage.dir/record.cc.o.d"
  "CMakeFiles/blot_storage.dir/replica.cc.o"
  "CMakeFiles/blot_storage.dir/replica.cc.o.d"
  "CMakeFiles/blot_storage.dir/segment_store.cc.o"
  "CMakeFiles/blot_storage.dir/segment_store.cc.o.d"
  "CMakeFiles/blot_storage.dir/trajectory.cc.o"
  "CMakeFiles/blot_storage.dir/trajectory.cc.o.d"
  "libblot_storage.a"
  "libblot_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
