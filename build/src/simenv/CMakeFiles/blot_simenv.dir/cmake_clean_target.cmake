file(REMOVE_RECURSE
  "libblot_simenv.a"
)
