# Empty dependencies file for blot_simenv.
# This may be replaced when dependencies are built.
