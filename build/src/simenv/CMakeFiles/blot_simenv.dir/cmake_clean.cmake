file(REMOVE_RECURSE
  "CMakeFiles/blot_simenv.dir/cluster.cc.o"
  "CMakeFiles/blot_simenv.dir/cluster.cc.o.d"
  "CMakeFiles/blot_simenv.dir/environment.cc.o"
  "CMakeFiles/blot_simenv.dir/environment.cc.o.d"
  "CMakeFiles/blot_simenv.dir/measurement.cc.o"
  "CMakeFiles/blot_simenv.dir/measurement.cc.o.d"
  "CMakeFiles/blot_simenv.dir/replica_sketch.cc.o"
  "CMakeFiles/blot_simenv.dir/replica_sketch.cc.o.d"
  "CMakeFiles/blot_simenv.dir/simulator.cc.o"
  "CMakeFiles/blot_simenv.dir/simulator.cc.o.d"
  "libblot_simenv.a"
  "libblot_simenv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_simenv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
