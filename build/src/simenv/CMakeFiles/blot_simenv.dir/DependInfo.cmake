
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simenv/cluster.cc" "src/simenv/CMakeFiles/blot_simenv.dir/cluster.cc.o" "gcc" "src/simenv/CMakeFiles/blot_simenv.dir/cluster.cc.o.d"
  "/root/repo/src/simenv/environment.cc" "src/simenv/CMakeFiles/blot_simenv.dir/environment.cc.o" "gcc" "src/simenv/CMakeFiles/blot_simenv.dir/environment.cc.o.d"
  "/root/repo/src/simenv/measurement.cc" "src/simenv/CMakeFiles/blot_simenv.dir/measurement.cc.o" "gcc" "src/simenv/CMakeFiles/blot_simenv.dir/measurement.cc.o.d"
  "/root/repo/src/simenv/replica_sketch.cc" "src/simenv/CMakeFiles/blot_simenv.dir/replica_sketch.cc.o" "gcc" "src/simenv/CMakeFiles/blot_simenv.dir/replica_sketch.cc.o.d"
  "/root/repo/src/simenv/simulator.cc" "src/simenv/CMakeFiles/blot_simenv.dir/simulator.cc.o" "gcc" "src/simenv/CMakeFiles/blot_simenv.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blot/CMakeFiles/blot_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/blot_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
