file(REMOVE_RECURSE
  "libblot_mip.a"
)
