# Empty compiler generated dependencies file for blot_mip.
# This may be replaced when dependencies are built.
