file(REMOVE_RECURSE
  "CMakeFiles/blot_mip.dir/lp.cc.o"
  "CMakeFiles/blot_mip.dir/lp.cc.o.d"
  "CMakeFiles/blot_mip.dir/mip.cc.o"
  "CMakeFiles/blot_mip.dir/mip.cc.o.d"
  "libblot_mip.a"
  "libblot_mip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blot_mip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
